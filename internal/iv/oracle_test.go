package iv

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/progen"
	"beyondiv/internal/rational"
)

// The dynamic oracle: execute the SSA function while tracking, for each
// loop, the current iteration number h and execution epoch (re-entries
// from an enclosing loop). Every classification makes a checkable
// prediction:
//
//	invariant   value == Expr(current env)
//	linear      value == Init(env) + h·Step(env)
//	polynomial  value == Σ coeffs·h^k               (numeric forms)
//	geometric   value == Σ coeffs·h^k + g·b^h
//	periodic    value == Initials[(phase-h) mod p](env)
//	wrap-around value == Init(env) at h < order, Inner(h-order) after
//	monotonic   values within one epoch never move the wrong way
//
// Any violated prediction is a classifier bug.

type oracleChecker struct {
	t        *testing.T
	a        *Analysis
	src      string
	seed     int64
	curVals  map[*ir.Value]int64
	iter     map[*loops.Loop]int64
	epoch    map[*loops.Loop]int64
	lastMono map[*ir.Value]monoSeen
	failed   bool
}

type monoSeen struct {
	epoch int64
	val   int64
}

func newOracle(t *testing.T, a *Analysis, src string, seed int64) *oracleChecker {
	return &oracleChecker{
		t: t, a: a, src: src, seed: seed,
		curVals:  map[*ir.Value]int64{},
		iter:     map[*loops.Loop]int64{},
		epoch:    map[*loops.Loop]int64{},
		lastMono: map[*ir.Value]monoSeen{},
	}
}

func (o *oracleChecker) errf(format string, args ...any) {
	if !o.failed {
		o.t.Logf("oracle failure (seed %d) in program:\n%s", o.seed, o.src)
	}
	o.failed = true
	o.t.Errorf(format, args...)
}

func (o *oracleChecker) onBlock(b *ir.Block) {
	for _, l := range o.a.Forest.Loops {
		if l.Header == b {
			o.iter[l]++
		}
		if l.Preheader() == b {
			o.iter[l] = -1
			o.epoch[l]++
		}
	}
}

// evalExpr evaluates an affine Expr against current runtime values.
func (o *oracleChecker) evalExpr(e *Expr) (rational.Rat, bool) {
	return e.Eval(func(v *ir.Value) (int64, bool) {
		x, ok := o.curVals[v]
		return x, ok
	})
}

// predict returns the predicted value of classification c at iteration
// h, when a prediction is possible.
func (o *oracleChecker) predict(c *Classification, h int64) (rational.Rat, bool) {
	switch c.Kind {
	case Invariant:
		if c.Expr == nil {
			return rational.NaR, false
		}
		return o.evalExpr(c.Expr)
	case Linear:
		init, ok1 := o.evalExpr(c.Init)
		step, ok2 := o.evalExpr(c.Step)
		if !ok1 || !ok2 {
			return rational.NaR, false
		}
		return init.Add(step.Mul(rational.FromInt(h))), true
	case Polynomial, Geometric:
		return c.PolyEval(h)
	case Periodic:
		if len(c.Initials) != c.Period {
			return rational.NaR, false
		}
		idx := int(((int64(c.Phase)-h)%int64(c.Period) + int64(c.Period)) % int64(c.Period))
		if c.Initials[idx] == nil {
			return rational.NaR, false
		}
		return o.evalExpr(c.Initials[idx])
	case WrapAround:
		if h < int64(c.Order) {
			if h == 0 {
				return o.evalExpr(c.Init)
			}
			return rational.NaR, false // intermediate warm-up values untracked
		}
		return o.predict(c.Inner, h-int64(c.Order))
	}
	return rational.NaR, false
}

func (o *oracleChecker) onEval(v *ir.Value, val int64) {
	o.curVals[v] = val
	l := o.a.Forest.InnermostContaining(v.Block)
	if l == nil {
		return
	}
	cls := o.a.LoopClassifications(l)[v]
	if cls == nil {
		return
	}
	h := o.iter[l]
	if h < 0 {
		return
	}
	if cls.Kind == Monotonic {
		// Guard against int64 wraparound (e.g. repeated squaring): the
		// classification is exact arithmetic, the interpreter wraps.
		if val > 1<<31 || val < -(1<<31) {
			delete(o.lastMono, v)
			return
		}
		seen, ok := o.lastMono[v]
		if ok && seen.epoch == o.epoch[l] {
			diff := val - seen.val
			if cls.Dir > 0 && diff < 0 {
				o.errf("%s: monotonic increasing but %d -> %d", v, seen.val, val)
			}
			if cls.Dir < 0 && diff > 0 {
				o.errf("%s: monotonic decreasing but %d -> %d", v, seen.val, val)
			}
			if cls.Strict && diff == 0 {
				o.errf("%s: strictly monotonic but repeated %d", v, val)
			}
		}
		o.lastMono[v] = monoSeen{epoch: o.epoch[l], val: val}
		return
	}
	want, ok := o.predict(cls, h)
	if !ok || !want.Valid() {
		return
	}
	// Skip near-overflow predictions: the interpreter wraps, rationals
	// do not.
	if !want.IsInt() {
		o.errf("%s at h=%d: predicted non-integer %s (class %s)", v, h, want, cls)
		return
	}
	w, _ := want.Int()
	if w > 1<<60 || w < -(1<<60) {
		return
	}
	if w != val {
		o.errf("%s at h=%d: predicted %d (class %s), executed %d", v, h, w, cls, val)
	}
}

// runOracle analyzes and executes one program under the oracle.
func runOracle(t *testing.T, src string, seed int64, params map[string]int64) {
	t.Helper()
	a, err := AnalyzeProgram(src)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	o := newOracle(t, a, src, seed)
	cfg := interp.Config{Params: params, MaxSteps: 300_000}
	_, err = interp.RunSSAHooked(a.SSA, cfg, interp.Hooks{OnBlock: o.onBlock, OnEval: o.onEval})
	if err != nil && err != interp.ErrStepLimit {
		t.Fatalf("run: %v", err)
	}
}

var oracleParams = map[string]int64{
	"n": 13, "m": 57, "c": 3, "k": 2, "i0": 5, "x": 7, "y": -2,
	"i": 1, "j": 2, "l": 4, "t": 6,
}

// TestOracleOnPaperCorpus runs the oracle over every program from the
// paper's figures.
func TestOracleOnPaperCorpus(t *testing.T) {
	corpus := []string{
		// L1, L2 basics.
		"i = i0\nL1: loop { i = i + k\nif i > n { exit } }",
		"j = n\nL2: loop { i = j + c\nj = i + k\nif j > m { exit } }",
		// Figure 3.
		"i = 1\nL8: loop { if a[i] > 0 { i = i + 2 } else { i = i + 2 }\nif i > n { exit } }",
		// Figure 4 wrap-arounds.
		"j = n\nk = n\ni = 1\nL10: loop { a[k] = a[j] + 1\nk = j\nj = i\ni = i + 1\nif i > m { exit } }",
		// Figure 5 rotation.
		"j = 1\nk = 2\nl = 3\nL13: for it = 1 to n { t = j\nj = k\nk = l\nl = t\na[j] = a[k] + a[l] }",
		// Flip-flops.
		"j = 1\njold = 2\nL11: for it = 1 to n { a[j] = a[jold]\njtemp = jold\njold = j\nj = jtemp }",
		"j = 1\njold = 2\nL12: for it = 1 to n { a[j] = a[jold]\nj = 3 - j\njold = 3 - jold }",
		// L14 closed forms.
		"j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to 12 { j = j + i\nk = k + j + 1\nl = l * 2 + 1\nm = 3 * m + 2 * i + 1 }",
		// Monotonics.
		"k = 0\nL15: for i = 1 to n { if a[i] > 0 { k = k + 1\nb[k] = a[i] } }",
		"k = 0\nL16: loop { if a[k] > 0 { k = k + 1 } else { k = k + 2 }\nif k > n { exit } }",
		// Figure 7/8 nest.
		"k = 0\nL17: loop { i = 1\nL18: loop { k = k + 2\nif i > 100 { exit }\ni = i + 1 }\nk = k + 2\nif k > 10000 { exit } }",
		// Figure 9 triangular, both variants.
		"j = 0\nL19: for i = 1 to n { j = j + i\nL20: for k = 1 to i { j = j + 1 } }",
		"j = 0\nL19: for i = 1 to n { L20: for k = 1 to i { j = j + 1 } }",
		// Doubling.
		"i = 1\nL1: loop { i = i + i\nif i > n { exit } }",
		// Products.
		"L1: for i = 1 to n { x = i * i\na[x] = 0 }",
		// Invariant-address loads as IV steps (§5.1).
		"k = 0\nL1: for i = 1 to n { s = w[5]\nk = k + s\nb[k] = i }",
		// Exponent geometrics.
		"L1: for i = 0 to 12 { x = 2 ** i\na[x] = i }",
		"L1: for i = 1 to 9 by 2 { y = 3 ** i\nb[y] = i }",
		// Monotonic growth with multiplications (§4.4 extension).
		"i = 1\nL1: for it = 1 to n { if a[it] > 0 { i = 2 * i + i } }",
		"i = 2\nL1: for it = 1 to 12 { if a[it] > 0 { i = i * i } else { i = i + 1 } }",
	}
	for _, src := range corpus {
		runOracle(t, src, 0, oracleParams)
	}
}

// TestOracleOnWorkloads runs the oracle over the synthetic benchmark
// workloads.
func TestOracleOnWorkloads(t *testing.T) {
	srcs := []string{
		progen.StraightLineLoop(20),
		progen.MutualChain(5),
		progen.MixedClasses(3),
		progen.NestedLoops(3),
	}
	for _, src := range srcs {
		runOracle(t, src, 0, map[string]int64{"n": 9})
	}
}

// TestQuickOracleRandomPrograms is the master property: on random
// programs with random inputs, no classification prediction is ever
// contradicted by execution.
func TestQuickOracleRandomPrograms(t *testing.T) {
	gen := progen.New()
	count := 0
	prop := func(seed int64, pn, pm int8) bool {
		count++
		src := gen.Program(seed)
		a, err := AnalyzeProgram(src)
		if err != nil {
			return false
		}
		o := newOracle(t, a, src, seed)
		params := map[string]int64{
			"n": int64(pn % 12), "m": int64(pm), "x": 3, "y": -1,
			"i": 1, "j": 2, "k": 3, "l": 4, "t": 5,
		}
		cfg := interp.Config{Params: params, MaxSteps: 100_000}
		_, err = interp.RunSSAHooked(a.SSA, cfg, interp.Hooks{OnBlock: o.onBlock, OnEval: o.onEval})
		if err != nil && err != interp.ErrStepLimit {
			return false
		}
		return !o.failed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOracleSweepParams stresses symbolic classifications (linear with
// symbolic steps, symbolic trip counts) across a parameter grid.
func TestOracleSweepParams(t *testing.T) {
	src := `
i = 0
L3: loop {
    i = i + 1
    j = i
    L4: loop {
        j = j + i
        a[j] = i
        if j > m { exit }
    }
    if i > n { exit }
}
`
	for n := int64(0); n < 6; n++ {
		for m := int64(0); m < 40; m += 7 {
			runOracle(t, src, 0, map[string]int64{"n": n, "m": m})
		}
	}
}
