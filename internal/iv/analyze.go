package iv

import (
	"fmt"
	"slices"
	"strings"

	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/scc"
	"beyondiv/internal/sccp"
	"beyondiv/internal/scratch"
	"beyondiv/internal/ssa"
)

// Analysis is the induction-variable classification of a whole program.
type Analysis struct {
	SSA    *ssa.Info
	Forest *loops.Forest
	Consts *sccp.Result

	opts   Options
	budget *guard.Budget
	scr    *classifyScratch // live only while AnalyzeWithOptions runs
	byLoop map[*loops.Loop]map[*ir.Value]*Classification
	trips  map[*loops.Loop]*TripCount
	exits  map[*ir.Value]exitInfo // exit-value cache (empty entries cached too)

	// Lookup indexes built once at construction; first definition wins
	// for duplicate names, matching the old linear-scan order.
	byName  map[string]*ir.Value
	byLabel map[string]*loops.Loop
}

// Options toggle parts of the analysis off, for the ablation studies in
// EXPERIMENTS.md. The zero value enables everything.
type Options struct {
	// DisableClosedForms skips the §4.3 simulation + Vandermonde solve:
	// polynomial/geometric classes keep their kind and order but lose
	// their rational coefficients.
	DisableClosedForms bool
	// DisableExitValues skips §5.3's exit-value propagation: values
	// computed by inner loops look unknown to the enclosing loop, so
	// nested families (Figures 7-9) disappear.
	DisableExitValues bool
	// Obs, when non-nil, records phase spans, classification counters
	// and per-decision provenance events. Nil disables telemetry at no
	// cost.
	Obs *obs.Recorder
	// Limits bounds the classifier's work: loop-nest depth and a step
	// budget charged per classified node. Ceiling hits panic with a
	// *guard.LimitError, contained at the facade. The zero value is
	// unchecked.
	Limits guard.Limits
	// Scratch, when non-nil, is the per-run arena the classifier draws
	// its working tables from; the engine threads one per worker. Nil
	// allocates fresh tables (one-shot runs). Like Obs and Limits it is
	// excluded from Fingerprint — scratch reuse cannot change results —
	// and the analysis drops its reference before returning, so a
	// cached Analysis never pins (or shares) an arena.
	Scratch *scratch.Arena
	// Metrics and Flight are the process-lifetime observability
	// backends of the engine AnalyzeProgramWith builds: per-phase
	// latency histograms, guard and fault counters, and the
	// flight-recorder capture of recent runs. Both are nil-off and,
	// like Obs, excluded from Fingerprint. The classifier publishes its
	// engine.par.* fan-out counters into Metrics; otherwise they
	// configure the engine.
	Metrics *metrics.Registry
	Flight  *metrics.Flight
	// Workers is the intra-run fan-out width for per-loop
	// classification: sibling subtrees of the loop forest classify
	// concurrently when Workers > 1 and the program is large enough
	// (see classifyParallel). 0 or 1 keeps the sequential path. Like
	// Obs it is excluded from Fingerprint: the parallel path merges
	// per-subtree results back in deterministic order, so results are
	// bit-identical whatever the width.
	Workers int
}

// Fingerprint identifies the option fields that change analysis
// results, for content-addressed caching: two runs whose fingerprints
// and sources agree produce identical classifications. Obs and Limits
// are excluded — telemetry never changes results, and limits are
// fingerprinted by the engine itself.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("closedforms:%t,exitvalues:%t", !o.DisableClosedForms, !o.DisableExitValues)
}

// Analyze classifies every scalar in every loop, innermost first
// (paper §5.3). The sccp result may be nil; constants then stay
// symbolic.
func Analyze(info *ssa.Info, forest *loops.Forest, consts *sccp.Result) *Analysis {
	return AnalyzeWithOptions(info, forest, consts, Options{})
}

// AnalyzeWithOptions is Analyze with ablation switches.
func AnalyzeWithOptions(info *ssa.Info, forest *loops.Forest, consts *sccp.Result, opts Options) *Analysis {
	a := &Analysis{
		SSA:    info,
		Forest: forest,
		Consts: consts,
		opts:   opts,
		byLoop: map[*loops.Loop]map[*ir.Value]*Classification{},
		trips:  map[*loops.Loop]*TripCount{},
		exits:  map[*ir.Value]exitInfo{},

		byName:  map[string]*ir.Value{},
		byLabel: map[string]*loops.Loop{},
	}
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Name != "" {
				if _, ok := a.byName[v.Name]; !ok {
					a.byName[v.Name] = v
				}
			}
		}
	}
	for _, l := range forest.Loops {
		if l.Label != "" {
			if _, ok := a.byLabel[l.Label]; !ok {
				a.byLabel[l.Label] = l
			}
		}
	}
	a.budget = opts.Limits.Budget("iv")
	if opts.Scratch != nil {
		a.scr = scratch.Get[classifyScratch](&opts.Scratch.IV)
	} else {
		a.scr = &classifyScratch{}
	}
	span := opts.Obs.Phase("iv")
	if !a.classifyParallel() {
		for _, l := range forest.InnerToOuter() {
			a.classifyLoop(l)
		}
	}
	span.End()
	// Detach the arena: the Analysis outlives the run (it is cached and
	// shared across goroutines), the scratch tables do not.
	a.scr = nil
	a.opts.Scratch = nil
	return a
}

// classifyLoop runs the full per-loop step — depth check,
// classification, trip count — recording into the analysis's own
// recorder, so the same body serves the sequential walk and each
// parallel worker's shard.
func (a *Analysis) classifyLoop(l *loops.Loop) {
	guard.Check("iv", "loop depth", int64(l.Depth), int64(a.opts.Limits.MaxLoopDepth))
	rec := a.opts.Obs
	var ls *obs.Span
	if rec != nil {
		ls = rec.Phase("loop " + l.Label)
	}
	a.analyzeLoop(l)
	a.trips[l] = a.computeTripCount(l)
	if a.trips[l] != nil {
		rec.Count("iv.tripcounts.derived")
	}
	ls.End()
}

// Obs returns the recorder the analysis was configured with (nil when
// telemetry is off); transformations downstream of the analysis use it
// to keep counting into the same registry.
func (a *Analysis) Obs() *obs.Recorder { return a.opts.Obs }

// ClassOf returns the classification of v with respect to loop l.
// Values defined inside nested loops are seen through their exit values;
// values defined outside l are invariant.
func (a *Analysis) ClassOf(l *loops.Loop, v *ir.Value) *Classification {
	if m := a.byLoop[l]; m != nil {
		if c, ok := m[v]; ok {
			return c
		}
	}
	return a.classOfOperand(l, v)
}

// TripCount returns the trip count information for l.
func (a *Analysis) TripCount(l *loops.Loop) *TripCount { return a.trips[l] }

// Loops returns the classification map of one loop (direct members
// only); the map must not be modified.
func (a *Analysis) LoopClassifications(l *loops.Loop) map[*ir.Value]*Classification {
	return a.byLoop[l]
}

// classOfOperand classifies a value used from loop l but not defined
// directly in it.
func (a *Analysis) classOfOperand(l *loops.Loop, v *ir.Value) *Classification {
	inner := a.Forest.InnermostContaining(v.Block)
	switch {
	case inner == l:
		// Defined directly in l but missing from the map (unreachable
		// from the classification graph): unknown.
		if m := a.byLoop[l]; m != nil {
			if c, ok := m[v]; ok {
				return c
			}
		}
		return unknown()
	case inner != nil && l != nil && l.ContainsLoop(inner):
		// Defined in a nested loop: visible only through its exit value.
		e := a.exitValue(v)
		if e.expr == nil {
			return unknown()
		}
		// Prove the symbolic trip-count guards in this loop's context.
		for _, g := range e.guards {
			lo, _, hasLo, _ := boundsOf(a.exprClass(l, g))
			if !hasLo || lo.Sign() < 0 {
				return unknown()
			}
		}
		c := a.exprClass(l, e.expr)
		if c.Rule == RuleNone {
			c.Rule = RuleExitValue
		}
		return c
	default:
		// Defined outside l: loop-invariant.
		return a.leafClass(l, v)
	}
}

// leafClass classifies a loop-external value: a constant when sccp
// proved one, a symbolic invariant atom otherwise.
func (a *Analysis) leafClass(l *loops.Loop, v *ir.Value) *Classification {
	if a.Consts != nil {
		if c, ok := a.Consts.Const(v); ok {
			cls := invariant(l, IntExpr(c))
			cls.Rule = RuleInvariantConst
			return cls
		}
	}
	if v.Op == ir.OpConst {
		cls := invariant(l, IntExpr(v.Const))
		cls.Rule = RuleInvariantConst
		return cls
	}
	cls := invariant(l, VarExpr(v))
	cls.Rule = RuleInvariantLeaf
	return cls
}

// leafExpr is the affine form of a loop-external value. Copy chains are
// chased so that reports read like the paper's ("(L7, n1, c1+k1)" rather
// than the copy j1 of n1).
func (a *Analysis) leafExpr(v *ir.Value) *Expr {
	for v.Op == ir.OpCopy {
		v = v.Args[0]
	}
	if a.Consts != nil {
		if c, ok := a.Consts.Const(v); ok {
			return IntExpr(c)
		}
	}
	if v.Op == ir.OpConst {
		return IntExpr(v.Const)
	}
	return VarExpr(v)
}

// exprClass folds an affine Expr into a classification in loop l by
// summing the classifications of its terms.
func (a *Analysis) exprClass(l *loops.Loop, e *Expr) *Classification {
	if e == nil {
		return unknown()
	}
	acc := invariant(l, ConstExpr(e.Const))
	// Deterministic order. Locally allocated on purpose: exprClass can
	// re-enter itself through ClassOf, so it cannot share the scratch
	// sort buffer the non-recursive exprClsLocal uses.
	terms := make([]*ir.Value, 0, len(e.Terms))
	for v := range e.Terms {
		terms = append(terms, v)
	}
	slices.SortFunc(terms, ir.ByID)
	for _, v := range terms {
		c := a.ClassOf(l, v)
		acc = addCls(l, acc, scaleCls(l, c, e.Terms[v]))
		if acc.Kind == Unknown {
			return acc
		}
	}
	return acc
}

// invariantExprOf returns the affine form of an invariant classification,
// falling back to the defining value itself as an opaque atom.
func invariantExprOf(c *Classification, v *ir.Value) *Expr {
	if c.Expr != nil {
		return c.Expr
	}
	return VarExpr(v)
}

// ---- per-loop SSA graph ----

// node is one vertex of a loop's SSA graph: either an operation of the
// loop body, or a synthetic exit-value node standing for an inner-loop
// value seen from this loop (paper §5.3).
type node struct {
	v      *ir.Value
	exit   bool    // synthetic exit-value node
	expr   *Expr   // exit value (exit nodes only); nil = unknown
	guards []*Expr // nonnegativity obligations for expr (exit nodes)
	succ   []int
}

type loopCtx struct {
	a   *Analysis
	l   *loops.Loop
	scr *classifyScratch
	// nodes and cls alias the scratch buffers (stored back when the
	// loop completes, so capacity carries to the next loop). The old
	// idx/exitI value maps and the per-SCR working maps live in scr as
	// dense id-indexed tables.
	nodes []node
	cls   []*Classification
	// storedArrays caches which arrays the loop writes (for the §5.1
	// invariant-load rule); nil until first use.
	storedArrays map[string]bool
}

// arrayStoredIn reports whether the loop (including nested loops)
// writes the named array.
func (ctx *loopCtx) arrayStoredIn(name string) bool {
	if ctx.storedArrays == nil {
		ctx.storedArrays = map[string]bool{}
		for _, b := range ctx.l.Blocks {
			for _, v := range b.Values {
				if v.Op == ir.OpStoreElem {
					ctx.storedArrays[v.Var] = true
				}
			}
		}
	}
	return ctx.storedArrays[name]
}

// exprClsLocal folds an affine Expr into a classification using the
// in-flight per-node classifications (Tarjan pop order guarantees the
// terms an exit node depends on are classified before it pops).
func (ctx *loopCtx) exprClsLocal(e *Expr) *Classification {
	if e == nil {
		return unknown()
	}
	acc := invariant(ctx.l, ConstExpr(e.Const))
	// The scratch sort buffer is safe here: exprClsLocal never
	// re-enters itself (operandCls reads finished classifications).
	terms := ctx.scr.terms[:0]
	for v := range e.Terms {
		terms = append(terms, v)
	}
	slices.SortFunc(terms, ir.ByID)
	ctx.scr.terms = terms
	for _, v := range terms {
		acc = addCls(ctx.l, acc, scaleCls(ctx.l, ctx.operandCls(v), e.Terms[v]))
		if acc.Kind == Unknown {
			return acc
		}
	}
	return acc
}

// checkedExit returns an exit node's expression once its trip-count
// guards are proven nonnegative in this loop's context, else nil.
func (ctx *loopCtx) checkedExit(id int) *Expr {
	n := ctx.nodes[id]
	if !n.exit || n.expr == nil {
		return n.expr
	}
	switch ctx.scr.exitOK[id] {
	case 1:
		return n.expr
	case 2:
		return nil
	}
	ok := true
	for _, g := range n.guards {
		lo, _, hasLo, _ := boundsOf(ctx.exprClsLocal(g))
		if !hasLo || lo.Sign() < 0 {
			ok = false
			break
		}
	}
	if !ok {
		ctx.scr.exitOK[id] = 2
		return nil
	}
	ctx.scr.exitOK[id] = 1
	return n.expr
}

func (a *Analysis) analyzeLoop(l *loops.Loop) {
	scr := a.scr
	scr.sizeValueTables(a.SSA.Func.NumValues())
	ctx := &loopCtx{a: a, l: l, scr: scr, nodes: scr.nodes[:0]}

	// Direct members: values in blocks whose innermost loop is l.
	for _, b := range l.Blocks {
		if a.Forest.InnermostContaining(b) != l {
			continue
		}
		for _, v := range b.Values {
			ctx.setIdx(v, len(ctx.nodes))
			ctx.nodes = append(ctx.nodes, node{v: v})
		}
	}
	direct := len(ctx.nodes) // exit nodes are appended after this point

	// Edges; a worklist because exit nodes appear while wiring. Each
	// node's successor list is carved full-capacity from the shared
	// edge buffer once the node's edges are complete, so later nodes'
	// appends can never clobber it.
	edges := scr.edges[:0]
	for i := 0; i < len(ctx.nodes); i++ {
		base := len(edges)
		if ctx.nodes[i].exit {
			if e := ctx.nodes[i].expr; e != nil {
				terms := scr.terms[:0]
				for t := range e.Terms {
					terms = append(terms, t)
				}
				slices.SortFunc(terms, ir.ByID)
				scr.terms = terms
				for _, t := range terms {
					if id, ok := ctx.edgeTarget(t); ok {
						edges = append(edges, id)
					}
				}
			}
		} else {
			for _, arg := range ctx.nodes[i].v.Args {
				if id, ok := ctx.edgeTarget(arg); ok {
					edges = append(edges, id)
				}
			}
		}
		if len(edges) > base {
			ctx.nodes[i].succ = edges[base:len(edges):len(edges)]
		}
	}
	scr.edges = edges

	scr.sizeNodeTables(len(ctx.nodes))
	ctx.cls = scr.cls
	comps := scc.ComponentsScratch(len(ctx.nodes), func(i int) []int { return ctx.nodes[i].succ }, &scr.scc)
	for _, comp := range comps {
		a.budget.Steps(int64(len(comp)))
		if scc.IsTrivial(comp, func(i int) []int { return ctx.nodes[i].succ }) {
			ctx.cls[comp[0]] = ctx.classifyTrivial(comp[0])
		} else {
			ctx.classifySCR(comp)
		}
	}

	out := make(map[*ir.Value]*Classification, direct)
	for i := 0; i < direct; i++ {
		c := ctx.cls[i]
		if c == nil {
			c = unknown()
		}
		out[ctx.nodes[i].v] = c
	}
	a.byLoop[l] = out
	scr.nodes = ctx.nodes
}

// edgeTarget resolves an operand to a graph node, creating exit-value
// nodes for inner-loop operands. Loop-external operands are leaves
// (no edge).
func (ctx *loopCtx) edgeTarget(arg *ir.Value) (int, bool) {
	if id, ok := ctx.idxOf(arg); ok {
		return id, true
	}
	inner := ctx.a.Forest.InnermostContaining(arg.Block)
	if inner == nil || !ctx.l.ContainsLoop(inner) || inner == ctx.l {
		return 0, false // external leaf
	}
	if id, ok := ctx.exitNodeOf(arg); ok {
		return id, true
	}
	id := len(ctx.nodes)
	ctx.setExitNode(arg, id)
	ei := ctx.a.exitValue(arg)
	ctx.nodes = append(ctx.nodes, node{v: arg, exit: true, expr: ei.expr, guards: ei.guards})
	return id, true
}

// operandCls classifies an operand of a node: another node's (already
// computed) classification, or a leaf.
func (ctx *loopCtx) operandCls(arg *ir.Value) *Classification {
	if id, ok := ctx.nodeOf(arg); ok {
		if ctx.cls[id] != nil {
			return ctx.cls[id]
		}
		return unknown()
	}
	return ctx.a.leafClass(ctx.l, arg)
}

// operandExprInvariant returns the affine form of an operand required to
// be invariant; nil when the operand varies in the loop.
func (ctx *loopCtx) operandExprInvariant(arg *ir.Value) *Expr {
	c := ctx.operandCls(arg)
	if c.Kind != Invariant {
		return nil
	}
	return invariantExprOf(c, arg)
}

// isHeaderPhi reports whether node id is a φ at this loop's header.
func (ctx *loopCtx) isHeaderPhi(id int) bool {
	n := ctx.nodes[id]
	return !n.exit && n.v.Op == ir.OpPhi && n.v.Block == ctx.l.Header
}

// classifyTrivial classifies an acyclic node using the operator algebra
// (§5.1) and the wrap-around rule (§4.1).
func (ctx *loopCtx) classifyTrivial(id int) *Classification {
	n := ctx.nodes[id]
	l := ctx.l
	if n.exit {
		return ctx.exprClsLocal(ctx.checkedExit(id))
	}
	v := n.v
	switch v.Op {
	case ir.OpConst:
		c := invariant(l, IntExpr(v.Const))
		c.Rule = RuleInvariantConst
		return c
	case ir.OpParam:
		c := invariant(l, VarExpr(v))
		c.Rule = RuleInvariantLeaf
		return c
	case ir.OpCopy:
		return ctx.operandCls(v.Args[0])
	case ir.OpStoreElem:
		return ctx.operandCls(v.Args[1])
	case ir.OpLoadElem:
		// §5.1: "if the address is invariant ... the load is classified
		// as invariant". With no memory SSA the rule is sound exactly
		// when the loop never stores to the array at all; the loaded
		// value is then one fixed cell for the whole loop execution.
		if sub := ctx.operandCls(v.Args[0]); sub.Kind == Invariant && !ctx.arrayStoredIn(v.Var) {
			c := invariant(l, VarExpr(v))
			c.Rule = RuleInvariantLoad
			return c
		}
		return unknown()
	case ir.OpNeg:
		c := negCls(l, ctx.operandCls(v.Args[0]))
		if c.Rule == RuleNone {
			c.Rule = RuleAlgebra
		}
		return c
	case ir.OpPhi:
		if v.Block == l.Header {
			return ctx.classifyTrivialHeaderPhi(v)
		}
		// A join φ outside any cycle: all incoming classifications must
		// agree.
		first := ctx.operandCls(v.Args[0])
		for _, arg := range v.Args[1:] {
			if !sameClassification(first, ctx.operandCls(arg)) {
				return unknown()
			}
		}
		return first
	default:
		if v.Op.IsArith() || v.Op.IsCompare() {
			c := combine(l, v.Op, ctx.operandCls(v.Args[0]), ctx.operandCls(v.Args[1]))
			if c.Rule == RuleNone {
				c.Rule = RuleAlgebra
			}
			return c
		}
		return unknown()
	}
}

// classifyTrivialHeaderPhi handles a loop-header φ that is not part of
// any cycle: the carried value comes from elsewhere, so the φ is a
// wrap-around variable (paper §4.1) — or a plain induction variable if
// the initial value happens to fit the carried sequence.
func (ctx *loopCtx) classifyTrivialHeaderPhi(v *ir.Value) *Classification {
	l := ctx.l
	initArg, carriedArgs := splitPhiArgs(l, v)
	if initArg == nil || len(carriedArgs) == 0 {
		return unknown()
	}
	carried := ctx.operandCls(carriedArgs[0])
	for _, other := range carriedArgs[1:] {
		if !sameClassification(carried, ctx.operandCls(other)) {
			return unknown()
		}
	}
	init := ctx.a.leafExpr(initArg)

	wrap := func(order int, inner *Classification) *Classification {
		c := &Classification{Kind: WrapAround, Loop: l, Order: order, Init: init, Inner: inner, HeadPhi: v, Rule: RuleWrapAround}
		if rec := ctx.a.opts.Obs; rec != nil {
			rec.Count("iv.scr.wrap_around")
			rec.Decide(v.String(), RuleWrapAround.String(), c.String())
		}
		return c
	}
	switch carried.Kind {
	case Invariant:
		ce := invariantExprOf(carried, carriedArgs[0])
		if init.Equal(ce) {
			c := invariant(l, init)
			c.Rule = RuleJoinMerge
			return c
		}
		return wrap(1, carried)
	case Linear:
		// φ(h) = init for h = 0, carried(h-1) after: if init fits the
		// sequence (init == carried.Init - step) the φ is itself linear.
		if fit := SubExpr(carried.Init, carried.Step); fit != nil && fit.Equal(init) {
			return &Classification{Kind: Linear, Loop: l, Init: init, Step: carried.Step, HeadPhi: v, Rule: RuleLinearFamily}
		}
		return wrap(1, carried)
	case WrapAround:
		return wrap(carried.Order+1, carried.Inner)
	case Polynomial, Geometric, Periodic, Monotonic:
		return wrap(1, carried)
	default:
		return unknown()
	}
}

// splitPhiArgs separates a header φ's arguments into the loop-entry
// value and the loop-carried values.
func splitPhiArgs(l *loops.Loop, phi *ir.Value) (init *ir.Value, carried []*ir.Value) {
	for i, arg := range phi.Args {
		if l.Contains(phi.Block.Preds[i]) {
			carried = append(carried, arg)
		} else {
			if init != nil && init != arg {
				return nil, nil // multiple distinct entry values
			}
			init = arg
		}
	}
	return init, carried
}

// Report renders every loop's classifications, innermost first, in a
// stable textual form (used by cmd/ivclass and the tests).
func (a *Analysis) Report() string {
	var sb strings.Builder
	for _, l := range a.Forest.InnerToOuter() {
		fmt.Fprintf(&sb, "loop %s (depth %d)", l.Label, l.Depth)
		if tc := a.trips[l]; tc != nil {
			fmt.Fprintf(&sb, " trip=%s", tc)
		}
		sb.WriteByte('\n')
		m := a.byLoop[l]
		vals := make([]*ir.Value, 0, len(m))
		for v := range m {
			if v.Name == "" {
				continue // unnamed temporaries stay out of the report
			}
			vals = append(vals, v)
		}
		slices.SortFunc(vals, ir.ByID)
		for _, v := range vals {
			fmt.Fprintf(&sb, "  %s = %s\n", v, m[v])
		}
	}
	return sb.String()
}
