package iv

import "testing"

// TestMaxTripCountMultiExit reproduces §5.2's multi-exit remark: with
// two always-executed exits, the loop count is bounded by the smaller
// per-exit count even though the exact count is unknown.
func TestMaxTripCountMultiExit(t *testing.T) {
	a := analyze(t, `
i = 0
L1: loop {
    i = i + 1
    a[i] = i
    if a[i] > m { exit }
    if i > 50 { exit }
}
`)
	tc := a.TripCount(a.LoopByLabel("L1"))
	if tc.State != TripUnknown {
		t.Fatalf("state = %v, want unknown exact count", tc.State)
	}
	if !tc.HasMax || tc.MaxConst != 50 {
		t.Errorf("max = %d (has %v), want 50", tc.MaxConst, tc.HasMax)
	}
}

// TestConditionalExitNotCounted: an exit test under a conditional can
// be skipped, so it must not produce an exact count.
func TestConditionalExitNotCounted(t *testing.T) {
	a := analyze(t, `
i = 0
L1: loop {
    i = i + 1
    if a[i] > 0 {
        if i > 10 { exit }
    }
}
`)
	tc := a.TripCount(a.LoopByLabel("L1"))
	if tc.State != TripUnknown || tc.HasMax {
		t.Errorf("conditional exit produced %s (max %v)", tc, tc.HasMax)
	}
}

// TestEqualityExit covers `exit when a == b` with divisibility
// reasoning.
func TestEqualityExit(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		// i: 0,2,4,...: hits 10 at h=5.
		{"i = 0\nL1: loop { if i == 10 { exit }\ni = i + 2 }", "5"},
		// i: 0,3,6,9,12: steps over 10: never exits.
		{"i = 0\nL1: loop { if i == 10 { exit }\ni = i + 3 }", "infinite"},
		// already equal on entry.
		{"i = 10\nL1: loop { if i == 10 { exit }\ni = i + 1 }", "0"},
		// equality via stay-on-!= (false branch exits).
		{"i = 0\nL1: while i != 6 { i = i + 2\na[i] = 1 }", "3"},
		// target behind the start: never reached.
		{"i = 5\nL1: loop { if i == 2 { exit }\ni = i + 1 }", "infinite"},
	}
	for _, c := range cases {
		a := analyze(t, c.src)
		if got := a.TripCount(a.LoopByLabel("L1")).String(); got != c.want {
			t.Errorf("%q: trip = %s, want %s", c.src, got, c.want)
		}
	}
}

// TestEqualityExitRuntime cross-checks the equality counts against
// execution via the interpreter-backed for-loop expectations.
func TestEqualityExitRuntime(t *testing.T) {
	for start := int64(0); start <= 4; start++ {
		for step := int64(1); step <= 3; step++ {
			src := sprintf("i = %d\nc = 0\nL1: loop { if i == 12 { exit }\nc = c + 1\ni = i + %d\nif c > 100 { exit } }", start, step)
			a := analyze(t, src)
			// Simulate.
			i, c := start, int64(0)
			for i != 12 && c <= 100 {
				c++
				i += step
			}
			hitsTarget := i == 12
			tc := a.TripCount(a.LoopByLabel("L1"))
			// The loop now has two exits: exact counts are off the
			// table, but the max bound must cover the real stays.
			// (c counts the increment above the second test, which runs
			// stays+1 times — §5.2's convention.)
			if tc.HasMax && c > tc.MaxConst+1 {
				t.Errorf("%q: ran %d times but max says %d", src, c, tc.MaxConst)
			}
			_ = hitsTarget
		}
	}
}
