// Package scan implements the lexer for the mini loop language.
//
// Statements are separated by newlines or semicolons, as in Go: the
// scanner inserts a SEMI token at a newline when the previous token could
// end a statement (identifier, number, or a closing bracket). Comments
// run from "//" to end of line.
package scan

import (
	"fmt"

	"beyondiv/internal/token"
)

// Scanner tokenizes one source buffer. Use New and then repeated Next
// calls; after the input is exhausted Next returns EOF forever.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
	// prev is the kind of the last non-SEMI token emitted, used for
	// automatic statement termination at newlines.
	prev token.Kind
	errs []error
}

// New returns a scanner for src.
func New(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1, prev: token.SEMI}
}

// Errors returns the lexical errors encountered so far.
func (s *Scanner) Errors() []error { return s.errs }

// maxErrors bounds lexical diagnostics per file: a megabyte of garbage
// input should not produce a megabyte of error report.
const maxErrors = 20

func (s *Scanner) errorf(p token.Pos, format string, args ...any) {
	if len(s.errs) >= maxErrors {
		return
	}
	s.errs = append(s.errs, &token.PosError{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) pos() token.Pos { return token.Pos{Line: s.line, Col: s.col} }

// canEndStmt reports whether a token kind may legally terminate a
// statement, controlling automatic SEMI insertion.
func canEndStmt(k token.Kind) bool {
	switch k {
	case token.IDENT, token.NUMBER, token.RPAREN, token.RBRACK, token.RBRACE, token.EXIT:
		return true
	}
	return false
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (s *Scanner) Next() token.Token {
	for {
		// Skip blanks; emit SEMI at meaningful newlines.
		for s.off < len(s.src) {
			c := s.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				s.advance()
				continue
			}
			if c == '\n' {
				p := s.pos()
				s.advance()
				if canEndStmt(s.prev) {
					s.prev = token.SEMI
					return token.Token{Kind: token.SEMI, Pos: p}
				}
				continue
			}
			if c == '/' && s.peek2() == '/' {
				for s.off < len(s.src) && s.peek() != '\n' {
					s.advance()
				}
				continue
			}
			break
		}
		if s.off >= len(s.src) {
			if canEndStmt(s.prev) {
				s.prev = token.SEMI
				return token.Token{Kind: token.SEMI, Pos: s.pos()}
			}
			return token.Token{Kind: token.EOF, Pos: s.pos()}
		}

		p := s.pos()
		c := s.advance()
		tok := token.Token{Pos: p}

		switch {
		case isLetter(c):
			start := s.off - 1
			for s.off < len(s.src) && (isLetter(s.peek()) || isDigit(s.peek())) {
				s.advance()
			}
			lit := s.src[start:s.off]
			if k, ok := token.Keywords[lit]; ok {
				tok.Kind = k
			} else {
				tok.Kind = token.IDENT
				tok.Lit = lit
			}
		case isDigit(c):
			start := s.off - 1
			for s.off < len(s.src) && isDigit(s.peek()) {
				s.advance()
			}
			if s.off < len(s.src) && isLetter(s.peek()) {
				s.errorf(p, "malformed number")
				tok.Kind = token.ILLEGAL
				tok.Lit = s.src[start:s.off]
			} else {
				tok.Kind = token.NUMBER
				tok.Lit = s.src[start:s.off]
			}
		default:
			switch c {
			case ';':
				tok.Kind = token.SEMI
			case '+':
				tok.Kind = token.PLUS
			case '-':
				tok.Kind = token.MINUS
			case '*':
				if s.peek() == '*' {
					s.advance()
					tok.Kind = token.POW
				} else {
					tok.Kind = token.STAR
				}
			case '/':
				tok.Kind = token.SLASH
			case '(':
				tok.Kind = token.LPAREN
			case ')':
				tok.Kind = token.RPAREN
			case '[':
				tok.Kind = token.LBRACK
			case ']':
				tok.Kind = token.RBRACK
			case '{':
				tok.Kind = token.LBRACE
			case '}':
				tok.Kind = token.RBRACE
			case ':':
				tok.Kind = token.COLON
			case ',':
				tok.Kind = token.COMMA
			case '=':
				if s.peek() == '=' {
					s.advance()
					tok.Kind = token.EQ
				} else {
					tok.Kind = token.ASSIGN
				}
			case '!':
				if s.peek() == '=' {
					s.advance()
					tok.Kind = token.NE
				} else {
					s.errorf(p, "unexpected character %q", c)
					tok.Kind = token.ILLEGAL
					tok.Lit = string(c)
				}
			case '<':
				if s.peek() == '=' {
					s.advance()
					tok.Kind = token.LE
				} else {
					tok.Kind = token.LT
				}
			case '>':
				if s.peek() == '=' {
					s.advance()
					tok.Kind = token.GE
				} else {
					tok.Kind = token.GT
				}
			default:
				s.errorf(p, "unexpected character %q", c)
				tok.Kind = token.ILLEGAL
				tok.Lit = string(c)
			}
		}
		s.prev = tok.Kind
		return tok
	}
}

// All tokenizes the whole input, excluding the trailing EOF.
func All(src string) ([]token.Token, []error) {
	return AllInto(src, nil)
}

// AllInto is All appending into buf (reset to length zero), so a
// caller that parses many programs can recycle one token buffer
// instead of regrowing it per run. The returned slice aliases buf's
// backing array when it fits; token literals alias src either way.
func AllInto(src string, buf []token.Token) ([]token.Token, []error) {
	s := New(src)
	out := buf[:0]
	for {
		t := s.Next()
		if t.Kind == token.EOF {
			return out, s.Errors()
		}
		out = append(out, t)
	}
}
