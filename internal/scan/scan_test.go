package scan

import (
	"strings"
	"testing"

	"beyondiv/internal/token"
)

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func eq(a, b []token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimpleAssignment(t *testing.T) {
	ts, errs := All("i = i + 1\n")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []token.Kind{token.IDENT, token.ASSIGN, token.IDENT, token.PLUS, token.NUMBER, token.SEMI}
	if !eq(kinds(ts), want) {
		t.Errorf("kinds = %v, want %v", kinds(ts), want)
	}
	if ts[0].Lit != "i" || ts[4].Lit != "1" {
		t.Errorf("literals wrong: %v", ts)
	}
}

func TestKeywordsAndOperators(t *testing.T) {
	src := "for i = 1 to n by 2 { a[i] = a[i] ** 2 / 3 }"
	ts, errs := All(src)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []token.Kind{
		token.FOR, token.IDENT, token.ASSIGN, token.NUMBER, token.TO,
		token.IDENT, token.BY, token.NUMBER, token.LBRACE,
		token.IDENT, token.LBRACK, token.IDENT, token.RBRACK, token.ASSIGN,
		token.IDENT, token.LBRACK, token.IDENT, token.RBRACK,
		token.POW, token.NUMBER, token.SLASH, token.NUMBER, token.RBRACE,
		token.SEMI,
	}
	// Note: no SEMI before '}' on the same line; the parser treats '}'
	// as an implicit statement terminator, as Go's grammar does.
	if !eq(kinds(ts), want) {
		t.Errorf("kinds = %v\nwant    %v", kinds(ts), want)
	}
}

func TestRelops(t *testing.T) {
	ts, errs := All("a == b != c < d <= e > f >= g")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	var rel []token.Kind
	for _, tk := range ts {
		if tk.Kind.IsRelop() {
			rel = append(rel, tk.Kind)
		}
	}
	want := []token.Kind{token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE}
	if !eq(rel, want) {
		t.Errorf("relops = %v, want %v", rel, want)
	}
}

func TestSemiInsertion(t *testing.T) {
	// No SEMI after '{' or operators; SEMI after ident/number/')'/']'/'}'.
	src := "loop {\n i = i +\n 1\n}\n"
	ts, errs := All(src)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []token.Kind{
		token.LOOP, token.LBRACE,
		token.IDENT, token.ASSIGN, token.IDENT, token.PLUS, token.NUMBER, token.SEMI,
		token.RBRACE, token.SEMI,
	}
	if !eq(kinds(ts), want) {
		t.Errorf("kinds = %v\nwant    %v", kinds(ts), want)
	}
}

func TestComments(t *testing.T) {
	ts, errs := All("i = 1 // trailing comment\n// full line\nj = 2\n")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	want := []token.Kind{
		token.IDENT, token.ASSIGN, token.NUMBER, token.SEMI,
		token.IDENT, token.ASSIGN, token.NUMBER, token.SEMI,
	}
	if !eq(kinds(ts), want) {
		t.Errorf("kinds = %v, want %v", kinds(ts), want)
	}
}

func TestPositions(t *testing.T) {
	ts, errs := All("i = 1\n  j = 2\n")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Errorf("first token at %s, want 1:1", ts[0].Pos)
	}
	// "j" is the 5th token (after i = 1 SEMI).
	if ts[4].Lit != "j" || ts[4].Pos.Line != 2 || ts[4].Pos.Col != 3 {
		t.Errorf("j token = %v at %s, want j at 2:3", ts[4], ts[4].Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	ts, errs := All("i = $\n")
	if len(errs) == 0 {
		t.Fatal("expected an error for '$'")
	}
	found := false
	for _, tk := range ts {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("no ILLEGAL token emitted")
	}
	if !strings.Contains(errs[0].Error(), "unexpected character") {
		t.Errorf("error = %v", errs[0])
	}
}

func TestMalformedNumber(t *testing.T) {
	_, errs := All("i = 12ab\n")
	if len(errs) == 0 {
		t.Fatal("expected an error for 12ab")
	}
}

func TestBangWithoutEq(t *testing.T) {
	_, errs := All("i ! j\n")
	if len(errs) == 0 {
		t.Fatal("expected an error for lone '!'")
	}
}

func TestEOFSemicolon(t *testing.T) {
	// Input without trailing newline still terminates the last statement.
	ts, errs := All("i = 1")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if ts[len(ts)-1].Kind != token.SEMI {
		t.Errorf("last token = %v, want SEMI", ts[len(ts)-1])
	}
}

func TestEmptyInput(t *testing.T) {
	ts, errs := All("")
	if len(ts) != 0 || len(errs) != 0 {
		t.Errorf("empty input gave %v, %v", ts, errs)
	}
	ts, errs = All("\n\n  // only comments\n")
	if len(ts) != 0 || len(errs) != 0 {
		t.Errorf("blank input gave %v, %v", ts, errs)
	}
}

func TestExplicitSemicolons(t *testing.T) {
	ts, errs := All("i = 1; j = 2")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	n := 0
	for _, tk := range ts {
		if tk.Kind == token.SEMI {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d SEMIs, want 2", n)
	}
}

func BenchmarkScan(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("x = x + 1\nfor i = 1 to n { a[i] = a[i-1] * 2 }\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, errs := All(src); len(errs) != 0 {
			b.Fatal(errs)
		}
	}
}
