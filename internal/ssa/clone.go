package ssa

import (
	"beyondiv/internal/dom"
	"beyondiv/internal/ir"
)

// Clone deep-copies the SSA program for clone-on-transform: the Func is
// cloned dense-ID-preserving (so the variable symbol table stays valid
// by construction), Params are remapped into the copy, and the
// dominator tree is rebuilt over the cloned CFG — same algorithm, same
// graph, same tree. The interned variable tables are shared with the
// original: they are immutable after construction, and values created
// on the clone after this point fall outside the dense table and report
// no variable, exactly as they do on an original Info.
//
// cs supplies the clone's remap tables (nil allocates fresh ones); on
// return it maps the original's value and block IDs to their clones,
// until the next clone reuses it.
func (i *Info) Clone(cs *ir.CloneScratch) *Info {
	if cs == nil {
		cs = &ir.CloneScratch{}
	}
	nf := i.Func.CloneScratch(cs)
	params := make(map[string]*ir.Value, len(i.Params))
	for name, v := range i.Params {
		params[name] = cs.ValueByID(v.ID)
	}
	return &Info{
		Func:     nf,
		Dom:      dom.New(nf),
		Params:   params,
		varNames: i.varNames,
		varOf:    i.varOf,
	}
}

// RefreshDom recomputes the dominator tree after a transformation
// changed the CFG or, more commonly, revalidates it after SSA-graph
// rewrites (new values, rewired φs) that left the block graph intact.
func (i *Info) RefreshDom() { i.Dom = dom.New(i.Func) }
