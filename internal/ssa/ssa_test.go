package ssa_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
	"beyondiv/internal/ssa"
)

func buildSSA(t *testing.T, src string) *ssa.Info {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	info := ssa.Build(cfgbuild.Build(file).Func)
	if errs := ssa.Verify(info); len(errs) != 0 {
		t.Fatalf("SSA verification failed: %v\n%s", errs, info.Func)
	}
	return info
}

// findByName returns the value with the given SSA name.
func findByName(info *ssa.Info, name string) *ir.Value {
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

// TestFigure1SSA reproduces the paper's Figure 1: the loop
//
//	j = n; L7: loop { i = j + c; j = i + k; if j > m exit }
//
// must produce j1 = n (copy), a loop-header φ j2 = φ(j1, j3), i1 = j2+c,
// and j3 = i1+k.
func TestFigure1SSA(t *testing.T) {
	info := buildSSA(t, `
j = n
L7: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`)
	j2 := findByName(info, "j2")
	if j2 == nil || j2.Op != ir.OpPhi {
		t.Fatalf("j2 = %v, want a φ\n%s", j2, info.Func)
	}
	j1 := findByName(info, "j1")
	if j1 == nil || j1.Op != ir.OpCopy {
		t.Fatalf("j1 = %v, want Copy of n", j1)
	}
	i1 := findByName(info, "i1")
	if i1 == nil || i1.Op != ir.OpAdd || i1.Args[0] != j2 {
		t.Fatalf("i1 = %v, want Add(j2, c)", i1)
	}
	j3 := findByName(info, "j3")
	if j3 == nil || j3.Op != ir.OpAdd || j3.Args[0] != i1 {
		t.Fatalf("j3 = %v, want Add(i1, k)", j3)
	}
	// φ args: one from outside (j1), one from the back edge (j3).
	hasJ1, hasJ3 := false, false
	for _, a := range j2.Args {
		if a == j1 {
			hasJ1 = true
		}
		if a == j3 {
			hasJ3 = true
		}
	}
	if !hasJ1 || !hasJ3 {
		t.Errorf("j2 args = %v, want {j1, j3}", j2.Args)
	}
	// n, c, k, m are params.
	for _, p := range []string{"n", "c", "k", "m"} {
		if _, ok := info.Params[p]; !ok {
			t.Errorf("param %q missing", p)
		}
	}
}

// TestFigure3SSA reproduces Figure 3: equal increments on both branches
// of an if/endif inside a loop give a header φ and a join φ.
func TestFigure3SSA(t *testing.T) {
	info := buildSSA(t, `
i = 1
L8: loop {
    if a[i] > 0 {
        i = i + 2
    } else {
        i = i + 2
    }
    if i > n { exit }
}
`)
	var headerPhi, joinPhi *ir.Value
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Op != ir.OpPhi {
				continue
			}
			if strings.Contains(b.Comment, "header") {
				headerPhi = v
			}
			if strings.Contains(b.Comment, "join") {
				joinPhi = v
			}
		}
	}
	if headerPhi == nil {
		t.Fatalf("no loop-header φ\n%s", info.Func)
	}
	if joinPhi == nil {
		t.Fatalf("no endif φ\n%s", info.Func)
	}
	if len(joinPhi.Args) != 2 {
		t.Errorf("join φ arity = %d", len(joinPhi.Args))
	}
}

func TestParamsCreatedOnlyWhenRead(t *testing.T) {
	info := buildSSA(t, "i = 1\nj = i + n\n")
	if _, ok := info.Params["n"]; !ok {
		t.Error("n should be a param")
	}
	if _, ok := info.Params["i"]; ok {
		t.Error("i is defined before use; must not be a param")
	}
}

func TestDeadPhiPruned(t *testing.T) {
	// x is stored on both branches but never read: its join φ must not
	// survive.
	info := buildSSA(t, "if a[1] > 0 { x = 1 } else { x = 2 }\ny = 3\n")
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpPhi {
				t.Errorf("dead φ survived: %s", v.LongString())
			}
		}
	}
}

func TestLoopVarKeepsOwnName(t *testing.T) {
	// for i = j to n: i must get its own SSA names, not alias j's.
	info := buildSSA(t, "j = 5\nfor i = j to n { a[i] = 0 }\n")
	i1 := findByName(info, "i1")
	if i1 == nil || i1.Op != ir.OpCopy {
		t.Fatalf("i1 = %v, want a Copy", i1)
	}
	i2 := findByName(info, "i2")
	if i2 == nil || i2.Op != ir.OpPhi {
		t.Fatalf("i2 = %v, want the header φ", i2)
	}
}

func TestVersionNumbersSequential(t *testing.T) {
	info := buildSSA(t, "i = 1\ni = i + 1\ni = i * 2\n")
	for _, name := range []string{"i1", "i2", "i3"} {
		if findByName(info, name) == nil {
			t.Errorf("missing version %s", name)
		}
	}
}

// equivalent runs both interpreters and compares observable behaviour.
func equivalent(src string, params map[string]int64) (bool, string) {
	file, err := parse.File(src)
	if err != nil {
		return false, fmt.Sprintf("parse: %v", err)
	}
	cfg := interp.Config{Params: params, MaxSteps: 200_000}

	ref, errA := interp.RunAST(file, cfg)
	info := ssa.Build(cfgbuild.Build(file).Func)
	if errs := ssa.Verify(info); len(errs) != 0 {
		return false, fmt.Sprintf("verify: %v", errs)
	}
	got, errB := interp.RunSSA(info, cfg)

	if errA != nil || errB != nil {
		// A step limit on either side is inconclusive: the two
		// interpreters meter work differently (statements+expressions
		// vs evaluated values), so a long-but-terminating program can
		// trip one budget and not the other.
		if errA == interp.ErrStepLimit || errB == interp.ErrStepLimit {
			return true, ""
		}
		if (errA == nil) != (errB == nil) {
			return false, fmt.Sprintf("errors diverge: ast=%v ssa=%v", errA, errB)
		}
		return true, ""
	}
	if len(ref.Writes) != len(got.Writes) {
		return false, fmt.Sprintf("write counts differ: ast=%d ssa=%d", len(ref.Writes), len(got.Writes))
	}
	for i := range ref.Writes {
		if ref.Writes[i] != got.Writes[i] {
			return false, fmt.Sprintf("write %d differs: ast=%v ssa=%v", i, ref.Writes[i], got.Writes[i])
		}
	}
	for k, v := range got.Scalars {
		if rv, ok := ref.Scalars[k]; ok && rv != v {
			return false, fmt.Sprintf("scalar %s differs: ast=%d ssa=%d", k, rv, v)
		}
	}
	return true, ""
}

func TestEquivalenceCurated(t *testing.T) {
	cases := []string{
		"i = 0\nfor i = 1 to 10 { a[i] = i * 2 }\n",
		"k = 0\nfor i = 1 to 20 { if a[i] > 0 { k = k + 1\nb[k] = a[i] } }\n",
		"j = 1\nk = 2\nfor it = 1 to 9 { t = j\nj = k\nk = t\na[j] = it }\n",
		"i = 0\nloop { i = i + 3\nif i > 30 { exit }\na[i] = 1 }\n",
		"x = 1\nwhile x < 100 { x = x * 2 + 1 }\na[1] = x\n",
		"s = 0\nfor i = 1 to 6 { for k = 1 to i { s = s + 1 } }\na[s] = s\n",
		"m = 0\nfor i = 1 to 5 { m = 3 * m + 2 * i + 1\na[i] = m }\n",
		"for i = 10 to 1 by -2 { a[i] = i }\n",
		"i = 0\nexit\ni = 99\n",
		"n = 4\nfor i = 1 to n { n = n - 1\na[i] = n }\n", // bound re-evaluated
	}
	for _, src := range cases {
		if ok, msg := equivalent(src, map[string]int64{"n": 8, "c": 2, "k": 3, "m": 50}); !ok {
			t.Errorf("divergence on:\n%s\n%s", src, msg)
		}
	}
}

// TestQuickEquivalence is the master front-end property: AST and SSA
// interpretation agree on random programs.
func TestQuickEquivalence(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64, p1, p2, p3 int8) bool {
		src := gen.Program(seed)
		params := map[string]int64{
			"n": int64(p1 % 16), "x": int64(p2), "y": int64(p3),
			"i": 1, "j": 2, "k": 3, "l": 4, "m": 5, "t": 6,
		}
		ok, msg := equivalent(src, params)
		if !ok {
			t.Logf("divergence (seed %d):\n%s\n%s", seed, src, msg)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickVerifyRandom builds SSA for random programs and runs the
// verifier.
func TestQuickVerifyRandom(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		info := ssa.Build(cfgbuild.Build(file).Func)
		return len(ssa.Verify(info)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestNestedLoopSSA(t *testing.T) {
	info := buildSSA(t, progen.NestedLoops(3))
	// The shared counter s needs a φ at each loop header.
	phis := 0
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpPhi && strings.HasPrefix(v.Name, "s") {
				phis++
			}
		}
	}
	if phis != 3 {
		t.Errorf("s has %d φs, want 3 (one per loop header)\n%s", phis, info.Func)
	}
}

func BenchmarkBuildSSA(b *testing.B) {
	file, err := parse.File(progen.StraightLineLoop(300))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := cfgbuild.Build(file).Func
		ssa.Build(f)
	}
}
