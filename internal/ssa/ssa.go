// Package ssa converts the tuple CFG into Static Single Assignment form
// following Cytron, Ferrante, Rosen, Wegman and Zadeck (TOPLAS 1991):
// φ-functions are placed at the iterated dominance frontier of each
// scalar variable's definition sites, and a dominator-tree walk renames
// every use to its unique reaching definition.
//
// After Build returns:
//   - no LoadVar/StoreVar instructions remain;
//   - every use of a scalar refers directly to its defining ir.Value,
//     which is exactly the "SSA graph" edge structure the classifier in
//     internal/iv traverses (paper §3);
//   - each definition carries a paper-style SSA name such as "i2"
//     (variable name + version, numbered from 1 in renaming order);
//   - variables read before any write are materialized as Param values
//     in the entry block (symbolic inputs like `n`).
//
// Construction works on dense tables indexed by value/block ID and by
// interned per-function variable indices — no pointer-keyed maps on the
// hot path — and all transient tables live in a reusable scratch
// arena (see BuildScratch) so batch runs stop paying the allocation
// tax.
package ssa

import (
	"fmt"
	"strconv"

	"beyondiv/internal/dom"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
	"beyondiv/internal/scratch"
)

// Info is the result of SSA construction.
type Info struct {
	Func *ir.Func
	Dom  *dom.Tree
	// Params maps variable names to their Param values, for variables
	// that are inputs to the program.
	Params map[string]*ir.Value

	// varNames is the function's interned variable symbol table (sorted)
	// and varOf maps value ID → index into it (-1: not a definition).
	varNames []string
	varOf    []int32
}

// VarOf returns the source variable an SSA definition (φ, param, or
// store-bound value) carries, or "" when v defines no variable. Values
// created after SSA construction (e.g. by transformations) are outside
// the dense table and report "".
func (i *Info) VarOf(v *ir.Value) string {
	if v == nil || v.ID < 0 || v.ID >= len(i.varOf) {
		return ""
	}
	if x := i.varOf[v.ID]; x >= 0 {
		return i.varNames[x]
	}
	return ""
}

// Build converts f to SSA form in place and returns the Info.
func Build(f *ir.Func) *Info { return BuildWithObs(f, nil) }

// BuildWithObs is Build with telemetry: an "ssa" phase span with child
// spans for the dominator tree, φ placement, renaming, and cleanup,
// plus φ and value counters. rec may be nil.
func BuildWithObs(f *ir.Func, rec *obs.Recorder) *Info {
	return BuildGuarded(f, rec, guard.Limits{})
}

// BuildGuarded is BuildWithObs under resource limits: φ insertion — the
// one step of Cytron construction that can blow the IR up quadratically
// — stops (panicking with a *guard.LimitError, contained at the facade)
// once the function exceeds lim.MaxSSAValues values.
func BuildGuarded(f *ir.Func, rec *obs.Recorder, lim guard.Limits) *Info {
	return BuildScratch(f, rec, lim, nil)
}

// BuildScratch is BuildGuarded drawing its transient working tables
// (definition stacks, φ worklists, use counts, …) from ar, the run's
// scratch arena; a nil arena allocates fresh tables for a one-shot
// build. Only working storage is arena-backed — everything retained in
// the returned Info is freshly allocated.
func BuildScratch(f *ir.Func, rec *obs.Recorder, lim guard.Limits, ar *scratch.Arena) *Info {
	span := rec.Phase("ssa")
	defer span.End()
	sub := rec.Phase("dom")
	tree := dom.New(f)
	sub.End()
	var scr *buildScratch
	if ar != nil {
		scr = scratch.Get[buildScratch](&ar.SSA)
	} else {
		scr = &buildScratch{}
	}
	st := &state{
		f:         f,
		tree:      tree,
		info:      &Info{Func: f, Dom: tree, Params: map[string]*ir.Value{}},
		scr:       scr,
		maxValues: lim.MaxSSAValues,
	}
	st.internVars()
	sub = rec.Phase("place-phis")
	st.placePhis()
	sub.End()
	sub = rec.Phase("rename")
	st.rename(f.Entry)
	sub.End()
	sub = rec.Phase("cleanup")
	st.hoistParams()
	st.stripLoadsStores()
	st.pruneDeadPhis()
	st.assignNames()
	sub.End()
	if rec != nil {
		phis, values := 0, 0
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				values++
				if v.Op == ir.OpPhi {
					phis++
				}
			}
		}
		rec.Add("ssa.phis", int64(phis))
		rec.Add("ssa.values", int64(values))
	}
	return st.info
}

// buildScratch holds every transient table one SSA construction needs,
// reusable across runs. Tables are (re)sized and cleared by the state
// methods that use them; nothing here survives into the returned Info.
type buildScratch struct {
	varIdx   map[string]int32 // interning: variable name → index
	stacks   [][]*ir.Value    // per-variable reaching-definition stacks
	defSites [][]*ir.Block    // per-variable StoreVar blocks
	vers     []int32          // per-variable next SSA version
	loadDef  []*ir.Value      // value ID → definition a LoadVar resolved to
	uses     []int32          // value ID → use count (dead-φ pruning)
	phiGen   []uint32         // block ID → stamp: φ already placed (this var)
	workGen  []uint32         // block ID → stamp: block already enqueued
	gen      uint32           // current stamp for phiGen/workGen
	work     []*ir.Block      // φ-placement worklist
	pushed   []int32          // shared stack of pushed var indices (rename)
	frames   []renameFrame    // explicit dominator-tree walk stack
	valsA    []*ir.Value      // hoistParams split buffers
	valsB    []*ir.Value
	nameBuf  []byte // assignNames number formatting
}

type renameFrame struct {
	b    *ir.Block
	next int // next dominator-tree child to visit
	base int // pushed-stack watermark to pop back to
}

type state struct {
	f    *ir.Func
	tree *dom.Tree
	info *Info
	scr  *buildScratch

	// maxValues caps the function's value count during φ insertion;
	// zero is unchecked. See BuildGuarded.
	maxValues int
}

// internVars builds the per-function symbol table: variable names in
// sorted order (so φ placement iterates variables deterministically,
// exactly as the map-based implementation did via VarNames).
func (s *state) internVars() {
	names := s.f.VarNames()
	s.info.varNames = names
	scr := s.scr
	if scr.varIdx == nil {
		scr.varIdx = make(map[string]int32, len(names))
	} else {
		clear(scr.varIdx)
	}
	for i, n := range names {
		scr.varIdx[n] = int32(i)
	}
	nv := len(names)
	scr.stacks = scratch.GrowReuse(scr.stacks, nv)
	scr.defSites = scratch.GrowReuse(scr.defSites, nv)
	scr.vers = scratch.Grow(scr.vers, nv)
	nb := s.f.NumBlocks()
	scr.phiGen = scratch.Grow(scr.phiGen, nb)
	scr.workGen = scratch.Grow(scr.workGen, nb)
	scr.gen = 0
	s.info.varOf = make([]int32, 0, s.f.NumValues())
}

// varIndex returns the interned index of a variable name; every name
// reaching here came from a LoadVar/StoreVar/Param op, so it is always
// present.
func (s *state) varIndex(name string) int32 { return s.scr.varIdx[name] }

// setVarOf records that def carries the variable with index x, growing
// the dense table to cover IDs minted after interning (φs, params).
// First binding wins, as in the original map semantics.
func (s *state) setVarOf(def *ir.Value, x int32) {
	vo := s.info.varOf
	for def.ID >= len(vo) {
		vo = append(vo, -1)
	}
	if vo[def.ID] < 0 {
		vo[def.ID] = x
	}
	s.info.varOf = vo
}

// placePhis inserts φ values at the iterated dominance frontier of each
// variable's store sites.
func (s *state) placePhis() {
	scr := s.scr
	df := s.tree.Frontiers()

	for _, b := range s.tree.ReversePostorder() {
		for _, v := range b.Values {
			if v.Op == ir.OpStoreVar {
				x := s.varIndex(v.Var)
				scr.defSites[x] = append(scr.defSites[x], b)
			}
		}
	}

	for x := range s.info.varNames {
		sites := scr.defSites[x]
		if len(sites) == 0 {
			continue
		}
		// Membership via generation stamps: one bump covers both the
		// φ-placed and in-worklist sets for this variable.
		scr.gen++
		gen := scr.gen
		work := append(scr.work[:0], sites...)
		for _, b := range work {
			scr.workGen[b.ID] = gen
		}
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, w := range df[blk.ID] {
				if scr.phiGen[w.ID] == gen {
					continue
				}
				scr.phiGen[w.ID] = gen
				s.newPhi(w, s.info.varNames[x])
				if scr.workGen[w.ID] != gen {
					scr.workGen[w.ID] = gen
					work = append(work, w)
				}
			}
		}
		scr.work = work[:0]
	}
}

// newPhi creates a φ for variable name at the front of block w with one
// slot per predecessor. The φ carries its variable in Var, which the
// rename walk reads back.
func (s *state) newPhi(w *ir.Block, name string) *ir.Value {
	guard.Check("ssa", "IR values", int64(s.f.NumValues()), int64(s.maxValues))
	phi := s.f.NewValue(w, ir.OpPhi, make([]*ir.Value, len(w.Preds))...)
	phi.Var = name
	// NewValue appended it; move it before the block's other values so
	// that φs execute first.
	vals := w.Values
	copy(vals[1:], vals[:len(vals)-1])
	vals[0] = phi
	return phi
}

func (s *state) currentDef(x int32) *ir.Value {
	if st := s.scr.stacks[x]; len(st) > 0 {
		return st[len(st)-1]
	}
	// No definition reaches here: the variable is a symbolic input.
	name := s.info.varNames[x]
	if p, ok := s.info.Params[name]; ok {
		return p
	}
	// Appending is safe mid-walk; params are moved to the front of the
	// entry block once renaming finishes (see hoistParams).
	p := s.f.NewValue(s.f.Entry, ir.OpParam)
	p.Var = name
	s.setVarOf(p, x)
	s.info.Params[name] = p
	return p
}

// assignNames numbers each variable's surviving definitions from 1 in
// reverse-postorder program order ("i1", "i2", ...). Names are assigned
// after dead-φ pruning so that version numbers count only surviving
// definitions, matching the paper's numbering.
func (s *state) assignNames() {
	scr := s.scr
	varOf := s.info.varOf
	for _, b := range s.tree.ReversePostorder() {
		for _, v := range b.Values {
			if v.ID >= len(varOf) || varOf[v.ID] < 0 || v.Name != "" {
				continue
			}
			x := varOf[v.ID]
			scr.vers[x]++
			buf := append(scr.nameBuf[:0], s.info.varNames[x]...)
			scr.nameBuf = strconv.AppendInt(buf, int64(scr.vers[x]), 10)
			v.Name = string(scr.nameBuf)
		}
	}
}

// resolve rewrites v's arguments, replacing LoadVar references with the
// definitions they resolved to.
func (s *state) resolve(v *ir.Value) {
	for i, a := range v.Args {
		if a != nil && a.Op == ir.OpLoadVar {
			d := s.scr.loadDef[a.ID]
			if d == nil {
				panic(fmt.Sprintf("ssa: load %s of %q resolved after use", a, a.Var))
			}
			v.Args[i] = d
		}
	}
}

// rename performs the dominator-tree walk.
func (s *state) rename(entry *ir.Block) {
	scr := s.scr
	// All LoadVar values predate φ insertion, so the current value count
	// bounds every ID the table is indexed by.
	scr.loadDef = scratch.Grow(scr.loadDef, s.f.NumValues())
	scr.pushed = scr.pushed[:0]
	stack := scr.frames[:0]
	stack = append(stack, renameFrame{b: entry, base: 0})
	s.renameBlock(entry)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		children := s.tree.Children(fr.b)
		if fr.next < len(children) {
			c := children[fr.next]
			fr.next++
			stack = append(stack, renameFrame{b: c, base: len(scr.pushed)})
			s.renameBlock(c)
			continue
		}
		for i := len(scr.pushed) - 1; i >= fr.base; i-- {
			x := scr.pushed[i]
			st := scr.stacks[x]
			scr.stacks[x] = st[:len(st)-1]
		}
		scr.pushed = scr.pushed[:fr.base]
		stack = stack[:len(stack)-1]
	}
	scr.frames = stack[:0]
}

// renameBlock processes one block: φ defs, loads, stores, ordinary
// values, the control value, and successor φ arguments. Pushed
// definitions are recorded on the shared pushed stack; the rename walk
// pops them when the block's dominator subtree is done.
func (s *state) renameBlock(b *ir.Block) {
	scr := s.scr
	push := func(x int32, def *ir.Value) {
		scr.stacks[x] = append(scr.stacks[x], def)
		scr.pushed = append(scr.pushed, x)
	}

	for _, v := range b.Values {
		switch v.Op {
		case ir.OpPhi:
			x := s.varIndex(v.Var)
			s.setVarOf(v, x)
			push(x, v)
		case ir.OpLoadVar:
			scr.loadDef[v.ID] = s.currentDef(s.varIndex(v.Var))
		case ir.OpStoreVar:
			s.resolve(v)
			def := v.Args[0]
			x := s.varIndex(v.Var)
			s.setVarOf(def, x)
			push(x, def)
		default:
			s.resolve(v)
		}
	}

	// Fill successor φ arguments with the defs live at this edge.
	for _, succ := range b.Succs {
		slot := succ.PredIndexOf(b)
		for _, v := range succ.Values {
			if v.Op != ir.OpPhi {
				break
			}
			v.Args[slot] = s.currentDef(s.varIndex(v.Var))
		}
	}
}

// hoistParams moves Param values to the front of the entry block so the
// textual order matches dominance order.
func (s *state) hoistParams() {
	entry := s.f.Entry
	params, rest := s.scr.valsA[:0], s.scr.valsB[:0]
	for _, v := range entry.Values {
		if v.Op == ir.OpParam {
			params = append(params, v)
		} else {
			rest = append(rest, v)
		}
	}
	entry.Values = append(entry.Values[:0], params...)
	entry.Values = append(entry.Values, rest...)
	s.scr.valsA, s.scr.valsB = params[:0], rest[:0]
}

// stripLoadsStores removes the now-dead scalar load/store instructions.
func (s *state) stripLoadsStores() {
	for _, b := range s.f.Blocks {
		out := b.Values[:0]
		for _, v := range b.Values {
			if v.Op == ir.OpLoadVar || v.Op == ir.OpStoreVar {
				continue
			}
			out = append(out, v)
		}
		b.Values = out
	}
}

// pruneDeadPhis removes φ (and param) values with no transitive non-φ
// uses; they arise for variables whose crossing definitions are never
// read. Leaving them would create spurious cycles in the SSA graph.
func (s *state) pruneDeadPhis() {
	uses := scratch.Grow(s.scr.uses, s.f.NumValues())
	s.scr.uses = uses
	for _, b := range s.f.Blocks {
		for _, v := range b.Values {
			for _, a := range v.Args {
				if a != v { // self-reference doesn't keep a φ alive
					uses[a.ID]++
				}
			}
		}
		if b.Control != nil {
			uses[b.Control.ID]++
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range s.f.Blocks {
			out := b.Values[:0]
			for _, v := range b.Values {
				dead := (v.Op == ir.OpPhi || v.Op == ir.OpParam) && uses[v.ID] == 0
				if dead {
					for _, a := range v.Args {
						if a != v {
							uses[a.ID]--
						}
					}
					changed = true
					if v.Op == ir.OpParam {
						delete(s.info.Params, v.Var)
					}
					continue
				}
				out = append(out, v)
			}
			b.Values = out
		}
	}
}

// Verify checks SSA invariants and returns the violations found:
// no scalar loads/stores remain; φ arity matches predecessor count; φ
// arguments are defined; every non-φ use is dominated by its definition;
// every φ argument's definition dominates the corresponding predecessor.
func Verify(info *Info) []error {
	f, tree := info.Func, info.Dom
	var errs []error
	defBlock := make([]*ir.Block, f.NumValues())
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			defBlock[v.ID] = b
		}
	}
	defOf := func(v *ir.Value) *ir.Block {
		if v.ID >= 0 && v.ID < len(defBlock) {
			return defBlock[v.ID]
		}
		return nil
	}
	for _, b := range f.Blocks {
		if !tree.Reachable(b) {
			continue
		}
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpLoadVar, ir.OpStoreVar:
				errs = append(errs, fmt.Errorf("%s: scalar %s survived SSA construction", v, v.Op))
				continue
			case ir.OpPhi:
				if len(v.Args) != len(b.Preds) {
					errs = append(errs, fmt.Errorf("%s: φ has %d args for %d preds", v, len(v.Args), len(b.Preds)))
					continue
				}
				for i, a := range v.Args {
					if a == nil {
						errs = append(errs, fmt.Errorf("%s: φ arg %d is nil", v, i))
						continue
					}
					d := defOf(a)
					if d == nil {
						errs = append(errs, fmt.Errorf("%s: φ arg %s has no defining block", v, a))
						continue
					}
					if !tree.Dominates(d, b.Preds[i]) {
						errs = append(errs, fmt.Errorf("%s: φ arg %s (def in %s) does not dominate pred %s", v, a, d, b.Preds[i]))
					}
				}
				continue
			}
			for _, a := range v.Args {
				d := defOf(a)
				if d == nil {
					errs = append(errs, fmt.Errorf("%s: arg %s has no defining block", v, a))
					continue
				}
				if d == b {
					// Same block: definition must precede use.
					if !precedes(b, a, v) {
						errs = append(errs, fmt.Errorf("%s: same-block use before def of %s", v, a))
					}
				} else if !tree.Dominates(d, b) {
					errs = append(errs, fmt.Errorf("%s: use not dominated by def of %s (in %s)", v, a, d))
				}
			}
		}
		if c := b.Control; c != nil {
			if d := defOf(c); d == nil || (d != b && !tree.Dominates(d, b)) {
				errs = append(errs, fmt.Errorf("%s: control %s not dominated by its def", b, c))
			}
		}
	}
	return errs
}

func precedes(b *ir.Block, a, v *ir.Value) bool {
	for _, w := range b.Values {
		if w == a {
			return true
		}
		if w == v {
			return false
		}
	}
	return false
}
