// Package ssa converts the tuple CFG into Static Single Assignment form
// following Cytron, Ferrante, Rosen, Wegman and Zadeck (TOPLAS 1991):
// φ-functions are placed at the iterated dominance frontier of each
// scalar variable's definition sites, and a dominator-tree walk renames
// every use to its unique reaching definition.
//
// After Build returns:
//   - no LoadVar/StoreVar instructions remain;
//   - every use of a scalar refers directly to its defining ir.Value,
//     which is exactly the "SSA graph" edge structure the classifier in
//     internal/iv traverses (paper §3);
//   - each definition carries a paper-style SSA name such as "i2"
//     (variable name + version, numbered from 1 in renaming order);
//   - variables read before any write are materialized as Param values
//     in the entry block (symbolic inputs like `n`).
package ssa

import (
	"fmt"

	"beyondiv/internal/dom"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
)

// Info is the result of SSA construction.
type Info struct {
	Func *ir.Func
	Dom  *dom.Tree
	// VarOf maps each SSA definition (φ, param, or store-bound value) to
	// its source variable name.
	VarOf map[*ir.Value]string
	// Params maps variable names to their Param values, for variables
	// that are inputs to the program.
	Params map[string]*ir.Value
}

// Build converts f to SSA form in place and returns the Info.
func Build(f *ir.Func) *Info { return BuildWithObs(f, nil) }

// BuildWithObs is Build with telemetry: an "ssa" phase span with child
// spans for the dominator tree, φ placement, renaming, and cleanup,
// plus φ and value counters. rec may be nil.
func BuildWithObs(f *ir.Func, rec *obs.Recorder) *Info {
	return BuildGuarded(f, rec, guard.Limits{})
}

// BuildGuarded is BuildWithObs under resource limits: φ insertion — the
// one step of Cytron construction that can blow the IR up quadratically
// — stops (panicking with a *guard.LimitError, contained at the facade)
// once the function exceeds lim.MaxSSAValues values.
func BuildGuarded(f *ir.Func, rec *obs.Recorder, lim guard.Limits) *Info {
	span := rec.Phase("ssa")
	defer span.End()
	sub := rec.Phase("dom")
	tree := dom.New(f)
	sub.End()
	st := &state{
		f:         f,
		tree:      tree,
		info:      &Info{Func: f, Dom: tree, VarOf: map[*ir.Value]string{}, Params: map[string]*ir.Value{}},
		stacks:    map[string][]*ir.Value{},
		vers:      map[string]int{},
		maxValues: lim.MaxSSAValues,
	}
	sub = rec.Phase("place-phis")
	st.placePhis()
	sub.End()
	sub = rec.Phase("rename")
	st.rename(f.Entry)
	sub.End()
	sub = rec.Phase("cleanup")
	st.hoistParams()
	st.stripLoadsStores()
	st.pruneDeadPhis()
	st.assignNames()
	sub.End()
	if rec != nil {
		phis, values := 0, 0
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				values++
				if v.Op == ir.OpPhi {
					phis++
				}
			}
		}
		rec.Add("ssa.phis", int64(phis))
		rec.Add("ssa.values", int64(values))
	}
	return st.info
}

type state struct {
	f    *ir.Func
	tree *dom.Tree
	info *Info

	// phiVar maps inserted φ values to their variable.
	phiVar map[*ir.Value]string
	// stacks holds the current definition stack per variable.
	stacks map[string][]*ir.Value
	// vers is the next SSA version number per variable.
	vers map[string]int
	// loadDef maps each LoadVar value to the definition it resolved to.
	loadDef map[*ir.Value]*ir.Value
	// maxValues caps the function's value count during φ insertion;
	// zero is unchecked. See BuildGuarded.
	maxValues int
}

// placePhis inserts φ values at the iterated dominance frontier of each
// variable's store sites.
func (s *state) placePhis() {
	s.phiVar = map[*ir.Value]string{}
	df := s.tree.Frontiers()

	defSites := map[string][]*ir.Block{}
	for _, b := range s.tree.ReversePostorder() {
		for _, v := range b.Values {
			if v.Op == ir.OpStoreVar {
				defSites[v.Var] = append(defSites[v.Var], b)
			}
		}
	}

	for _, name := range s.f.VarNames() {
		sites := defSites[name]
		if len(sites) == 0 {
			continue
		}
		hasPhi := map[*ir.Block]bool{}
		work := append([]*ir.Block(nil), sites...)
		inWork := map[*ir.Block]bool{}
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, w := range df[x.ID] {
				if hasPhi[w] {
					continue
				}
				hasPhi[w] = true
				phi := s.newPhi(w, name)
				s.phiVar[phi] = name
				if !inWork[w] {
					inWork[w] = true
					work = append(work, w)
				}
			}
		}
	}
}

// newPhi creates a φ for variable name at the front of block w with one
// slot per predecessor.
func (s *state) newPhi(w *ir.Block, name string) *ir.Value {
	guard.Check("ssa", "IR values", int64(s.f.NumValues()), int64(s.maxValues))
	phi := s.f.NewValue(w, ir.OpPhi, make([]*ir.Value, len(w.Preds))...)
	phi.Var = name
	// NewValue appended it; move it before the block's other values so
	// that φs execute first.
	vals := w.Values
	copy(vals[1:], vals[:len(vals)-1])
	vals[0] = phi
	return phi
}

func (s *state) currentDef(name string) *ir.Value {
	if st := s.stacks[name]; len(st) > 0 {
		return st[len(st)-1]
	}
	// No definition reaches here: the variable is a symbolic input.
	if p, ok := s.info.Params[name]; ok {
		return p
	}
	// Appending is safe mid-walk; params are moved to the front of the
	// entry block once renaming finishes (see hoistParams).
	p := s.f.NewValue(s.f.Entry, ir.OpParam)
	p.Var = name
	s.bindVar(p, name)
	s.info.Params[name] = p
	return p
}

// bindVar records that def carries variable name. SSA names proper are
// assigned after dead-φ pruning (assignNames) so that version numbers
// count only surviving definitions, matching the paper's numbering.
func (s *state) bindVar(def *ir.Value, name string) {
	if _, ok := s.info.VarOf[def]; !ok {
		s.info.VarOf[def] = name
	}
}

// assignNames numbers each variable's surviving definitions from 1 in
// reverse-postorder program order ("i1", "i2", ...).
func (s *state) assignNames() {
	for _, b := range s.tree.ReversePostorder() {
		for _, v := range b.Values {
			name, ok := s.info.VarOf[v]
			if !ok || v.Name != "" {
				continue
			}
			s.vers[name]++
			v.Name = fmt.Sprintf("%s%d", name, s.vers[name])
		}
	}
}

// resolve rewrites v's arguments, replacing LoadVar references with the
// definitions they resolved to.
func (s *state) resolve(v *ir.Value) {
	for i, a := range v.Args {
		if a != nil && a.Op == ir.OpLoadVar {
			d, ok := s.loadDef[a]
			if !ok {
				panic(fmt.Sprintf("ssa: load %s of %q resolved after use", a, a.Var))
			}
			v.Args[i] = d
		}
	}
}

// rename performs the dominator-tree walk.
func (s *state) rename(entry *ir.Block) {
	if s.loadDef == nil {
		s.loadDef = map[*ir.Value]*ir.Value{}
	}
	type frame struct {
		b      *ir.Block
		next   int // next dominator-tree child to visit
		pushed []string
	}
	stack := []frame{{b: entry, pushed: s.renameBlock(entry)}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		children := s.tree.Children(fr.b)
		if fr.next < len(children) {
			c := children[fr.next]
			fr.next++
			stack = append(stack, frame{b: c, pushed: s.renameBlock(c)})
			continue
		}
		for _, name := range fr.pushed {
			st := s.stacks[name]
			s.stacks[name] = st[:len(st)-1]
		}
		stack = stack[:len(stack)-1]
	}
}

// renameBlock processes one block: φ defs, loads, stores, ordinary
// values, the control value, and successor φ arguments. It returns the
// variables pushed, for the caller to pop.
func (s *state) renameBlock(b *ir.Block) []string {
	var pushed []string
	push := func(name string, def *ir.Value) {
		s.stacks[name] = append(s.stacks[name], def)
		pushed = append(pushed, name)
	}

	for _, v := range b.Values {
		switch v.Op {
		case ir.OpPhi:
			name := s.phiVar[v]
			s.bindVar(v, name)
			push(name, v)
		case ir.OpLoadVar:
			s.loadDef[v] = s.currentDef(v.Var)
		case ir.OpStoreVar:
			s.resolve(v)
			def := v.Args[0]
			s.bindVar(def, v.Var)
			push(v.Var, def)
		default:
			s.resolve(v)
		}
	}

	// Fill successor φ arguments with the defs live at this edge.
	for _, succ := range b.Succs {
		slot := succ.PredIndexOf(b)
		for _, v := range succ.Values {
			if v.Op != ir.OpPhi {
				break
			}
			if name, ok := s.phiVar[v]; ok {
				v.Args[slot] = s.currentDef(name)
			}
		}
	}
	return pushed
}

// hoistParams moves Param values to the front of the entry block so the
// textual order matches dominance order.
func (s *state) hoistParams() {
	entry := s.f.Entry
	var params, rest []*ir.Value
	for _, v := range entry.Values {
		if v.Op == ir.OpParam {
			params = append(params, v)
		} else {
			rest = append(rest, v)
		}
	}
	entry.Values = append(params, rest...)
}

// stripLoadsStores removes the now-dead scalar load/store instructions.
func (s *state) stripLoadsStores() {
	for _, b := range s.f.Blocks {
		out := b.Values[:0]
		for _, v := range b.Values {
			if v.Op == ir.OpLoadVar || v.Op == ir.OpStoreVar {
				continue
			}
			out = append(out, v)
		}
		b.Values = out
	}
}

// pruneDeadPhis removes φ (and param) values with no transitive non-φ
// uses; they arise for variables whose crossing definitions are never
// read. Leaving them would create spurious cycles in the SSA graph.
func (s *state) pruneDeadPhis() {
	uses := map[*ir.Value]int{}
	for _, b := range s.f.Blocks {
		for _, v := range b.Values {
			for _, a := range v.Args {
				if a != v { // self-reference doesn't keep a φ alive
					uses[a]++
				}
			}
		}
		if b.Control != nil {
			uses[b.Control]++
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range s.f.Blocks {
			out := b.Values[:0]
			for _, v := range b.Values {
				dead := (v.Op == ir.OpPhi || v.Op == ir.OpParam) && uses[v] == 0
				if dead {
					for _, a := range v.Args {
						if a != v {
							uses[a]--
						}
					}
					changed = true
					if v.Op == ir.OpParam {
						delete(s.info.Params, v.Var)
					}
					continue
				}
				out = append(out, v)
			}
			b.Values = out
		}
	}
}

// Verify checks SSA invariants and returns the violations found:
// no scalar loads/stores remain; φ arity matches predecessor count; φ
// arguments are defined; every non-φ use is dominated by its definition;
// every φ argument's definition dominates the corresponding predecessor.
func Verify(info *Info) []error {
	f, tree := info.Func, info.Dom
	var errs []error
	defBlock := map[*ir.Value]*ir.Block{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			defBlock[v] = b
		}
	}
	for _, b := range f.Blocks {
		if !tree.Reachable(b) {
			continue
		}
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpLoadVar, ir.OpStoreVar:
				errs = append(errs, fmt.Errorf("%s: scalar %s survived SSA construction", v, v.Op))
				continue
			case ir.OpPhi:
				if len(v.Args) != len(b.Preds) {
					errs = append(errs, fmt.Errorf("%s: φ has %d args for %d preds", v, len(v.Args), len(b.Preds)))
					continue
				}
				for i, a := range v.Args {
					if a == nil {
						errs = append(errs, fmt.Errorf("%s: φ arg %d is nil", v, i))
						continue
					}
					d, ok := defBlock[a]
					if !ok {
						errs = append(errs, fmt.Errorf("%s: φ arg %s has no defining block", v, a))
						continue
					}
					if !tree.Dominates(d, b.Preds[i]) {
						errs = append(errs, fmt.Errorf("%s: φ arg %s (def in %s) does not dominate pred %s", v, a, d, b.Preds[i]))
					}
				}
				continue
			}
			for _, a := range v.Args {
				d, ok := defBlock[a]
				if !ok {
					errs = append(errs, fmt.Errorf("%s: arg %s has no defining block", v, a))
					continue
				}
				if d == b {
					// Same block: definition must precede use.
					if !precedes(b, a, v) {
						errs = append(errs, fmt.Errorf("%s: same-block use before def of %s", v, a))
					}
				} else if !tree.Dominates(d, b) {
					errs = append(errs, fmt.Errorf("%s: use not dominated by def of %s (in %s)", v, a, d))
				}
			}
		}
		if c := b.Control; c != nil {
			if d, ok := defBlock[c]; !ok || (d != b && !tree.Dominates(d, b)) {
				errs = append(errs, fmt.Errorf("%s: control %s not dominated by its def", b, c))
			}
		}
	}
	return errs
}

func precedes(b *ir.Block, a, v *ir.Value) bool {
	for _, w := range b.Values {
		if w == a {
			return true
		}
		if w == v {
			return false
		}
	}
	return false
}
