package ir

// CloneScratch holds the dense ID-indexed remap tables one Clone call
// uses, reusable across clones (the engine keeps one per worker arena).
// The tables describe the most recent clone until the next CloneScratch
// call overwrites them; callers that need the old→new mapping (to remap
// a dominator tree's companions, parameter maps, loop headers) must
// read it before reusing the scratch.
type CloneScratch struct {
	vals []*Value // old value ID → cloned value
	blks []*Block // old block ID → cloned block
}

// ValueByID returns the clone of the value with the given ID, or nil
// for IDs never defined (or defined by since-deleted values).
func (cs *CloneScratch) ValueByID(id int) *Value {
	if id < 0 || id >= len(cs.vals) {
		return nil
	}
	return cs.vals[id]
}

// BlockByID returns the clone of the block with the given ID, or nil.
func (cs *CloneScratch) BlockByID(id int) *Block {
	if id < 0 || id >= len(cs.blks) {
		return nil
	}
	return cs.blks[id]
}

// Clone returns a deep copy of the function: fresh blocks and values
// with every internal reference (args, φ inputs, successor and
// predecessor lists, block controls, entry/exit) remapped into the
// copy. IDs are preserved exactly — including gaps left by deleted
// values — so dense ID-indexed tables built against the original (SSA
// variable tables, scratch arenas) remain valid against the clone, and
// nextValueID/nextBlockID carry over so new values appended to the
// clone never collide with originals. This is what lets transformations
// run clone-on-write: a cached analysis keeps its Func bit-identical
// while the optimizer mutates the copy.
func (f *Func) Clone() *Func { return f.CloneScratch(nil) }

// CloneScratch is Clone drawing its remap tables from cs (nil allocates
// fresh ones). The copy itself is slab-allocated: one backing array for
// all values, one for all blocks, and shared pointer slabs carved per
// list with full three-index caps, so growing any list on the clone
// reallocates instead of clobbering a neighbour.
func (f *Func) CloneScratch(cs *CloneScratch) *Func {
	if cs == nil {
		cs = &CloneScratch{}
	}
	cs.vals = growCleared(cs.vals, f.nextValueID)
	cs.blks = growCleared(cs.blks, f.nextBlockID)

	nvals, nargs, nedges := 0, 0, 0
	for _, b := range f.Blocks {
		nvals += len(b.Values)
		nedges += len(b.Succs) + len(b.Preds)
		for _, v := range b.Values {
			nargs += len(v.Args)
		}
	}

	nf := &Func{nextValueID: f.nextValueID, nextBlockID: f.nextBlockID}
	vslab := make([]Value, nvals)
	bslab := make([]Block, len(f.Blocks))
	vptrs := make([]*Value, nvals+nargs)
	bptrs := make([]*Block, nedges+len(f.Blocks))

	// First pass: materialize every block and value so references can
	// resolve in any direction on the second pass.
	vi := 0
	for i, b := range f.Blocks {
		nb := &bslab[i]
		nb.ID, nb.Kind, nb.Comment = b.ID, b.Kind, b.Comment
		cs.blks[b.ID] = nb
		for _, v := range b.Values {
			nv := &vslab[vi]
			vi++
			nv.ID, nv.Op, nv.Block = v.ID, v.Op, nb
			nv.Const, nv.Var, nv.Name, nv.Pos = v.Const, v.Var, v.Name, v.Pos
			cs.vals[v.ID] = nv
		}
	}

	// Second pass: wire lists and references through the remap tables.
	nf.Blocks = carveBlocks(&bptrs, len(f.Blocks))
	vi = 0
	for i, b := range f.Blocks {
		nb := cs.blks[b.ID]
		nf.Blocks[i] = nb
		nb.Values = carveValues(&vptrs, len(b.Values))
		for j, v := range b.Values {
			nv := &vslab[vi]
			vi++
			nb.Values[j] = nv
			if len(v.Args) > 0 {
				nv.Args = carveValues(&vptrs, len(v.Args))
				for k, a := range v.Args {
					nv.Args[k] = cs.vals[a.ID]
				}
			}
		}
		if b.Control != nil {
			nb.Control = cs.vals[b.Control.ID]
		}
		if len(b.Succs) > 0 {
			nb.Succs = carveBlocks(&bptrs, len(b.Succs))
			for j, s := range b.Succs {
				nb.Succs[j] = cs.blks[s.ID]
			}
		}
		if len(b.Preds) > 0 {
			nb.Preds = carveBlocks(&bptrs, len(b.Preds))
			for j, p := range b.Preds {
				nb.Preds[j] = cs.blks[p.ID]
			}
		}
	}
	if f.Entry != nil {
		nf.Entry = cs.blks[f.Entry.ID]
	}
	if f.Exit != nil {
		nf.Exit = cs.blks[f.Exit.ID]
	}
	return nf
}

// carveValues takes the next n pointers off the slab with a full cap,
// so appends to the carved slice reallocate rather than alias the slab.
func carveValues(slab *[]*Value, n int) []*Value {
	out := (*slab)[:n:n]
	*slab = (*slab)[n:]
	return out
}

func carveBlocks(slab *[]*Block, n int) []*Block {
	out := (*slab)[:n:n]
	*slab = (*slab)[n:]
	return out
}

// growCleared resizes a remap table to n cleared entries, reusing
// capacity when it can (the scratch idiom: correctness never depends on
// what a recycled table left behind).
func growCleared[T any](s []*T, n int) []*T {
	if cap(s) < n {
		return make([]*T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}
