// Package ir defines the intermediate representation the analyses run on:
// a control-flow graph of basic blocks holding tuple instructions.
//
// The instruction set follows the paper's Figure 2: AD (add), SB
// (subtract), MP (multiply), DV (divide), EX (exponentiate), NG (negate),
// PH (φ-function), LD/ST (loads and stores), and LT (literal), extended
// with comparisons for branch conditions, Copy for direct scalar moves
// (so that families of variables remain visible, as in the paper's
// examples), and Param for symbolic inputs such as `n`.
//
// Before SSA construction, scalar accesses appear as LoadVar/StoreVar
// instructions; SSA renaming (internal/ssa) removes them, introducing Phi
// values and rewriting uses to refer to definitions directly, which is
// the "SSA graph" the classifier traverses.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"beyondiv/internal/token"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. The two-letter names in comments are the paper's Figure 2
// mnemonics.
const (
	OpInvalid Op = iota

	OpConst // LT: integer literal; Aux.Const
	OpParam // symbolic program input (read before any write); Aux.Var

	OpAdd // AD: Args[0] + Args[1]
	OpSub // SB: Args[0] - Args[1]
	OpMul // MP: Args[0] * Args[1]
	OpDiv // DV: Args[0] / Args[1] (truncated integer division)
	OpExp // EX: Args[0] ** Args[1]
	OpNeg // NG: -Args[0]

	OpPhi  // PH: one argument per predecessor, in predecessor order
	OpCopy // direct scalar move x = y; kept so families stay visible

	OpLoadVar  // scalar load (pre-SSA only); Aux.Var
	OpStoreVar // scalar store (pre-SSA only); Aux.Var, Args[0] = value

	OpLoadElem  // LD indexed: Aux.Var, Args[0] = subscript
	OpStoreElem // ST indexed: Aux.Var, Args[0] = subscript, Args[1] = value

	OpLess    // Args[0] <  Args[1] (1 or 0)
	OpLeq     // Args[0] <= Args[1]
	OpGreater // Args[0] >  Args[1]
	OpGeq     // Args[0] >= Args[1]
	OpEq      // Args[0] == Args[1]
	OpNeq     // Args[0] != Args[1]
)

var opNames = [...]string{
	OpInvalid:   "Invalid",
	OpConst:     "Const",
	OpParam:     "Param",
	OpAdd:       "Add",
	OpSub:       "Sub",
	OpMul:       "Mul",
	OpDiv:       "Div",
	OpExp:       "Exp",
	OpNeg:       "Neg",
	OpPhi:       "Phi",
	OpCopy:      "Copy",
	OpLoadVar:   "LoadVar",
	OpStoreVar:  "StoreVar",
	OpLoadElem:  "LoadElem",
	OpStoreElem: "StoreElem",
	OpLess:      "Less",
	OpLeq:       "Leq",
	OpGreater:   "Greater",
	OpGeq:       "Geq",
	OpEq:        "Eq",
	OpNeq:       "Neq",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// IsCompare reports whether op is a relational operator.
func (op Op) IsCompare() bool { return op >= OpLess && op <= OpNeq }

// IsArith reports whether op is an arithmetic operator.
func (op Op) IsArith() bool { return op >= OpAdd && op <= OpNeg }

// Value is one instruction; it names the value it computes. Stores
// compute their stored value (the paper: "a store always takes the
// classification of the value being stored").
type Value struct {
	ID    int
	Op    Op
	Args  []*Value
	Block *Block
	Const int64  // OpConst only
	Var   string // variable or array name for Param/Load*/Store*
	Name  string // SSA name like "i2", assigned by renaming; may be empty
	Pos   token.Pos
}

// ByID orders values by SSA id — the comparator every deterministic
// sort in the analyses shares (for slices.SortFunc).
func ByID(a, b *Value) int { return a.ID - b.ID }

// ArgIndexOf returns the position of arg within v.Args, or -1.
func (v *Value) ArgIndexOf(arg *Value) int {
	for i, a := range v.Args {
		if a == arg {
			return i
		}
	}
	return -1
}

// ReplaceArg substitutes every occurrence of old in v.Args with new.
func (v *Value) ReplaceArg(old, new *Value) {
	for i, a := range v.Args {
		if a == old {
			v.Args[i] = new
		}
	}
}

// String renders the value reference (its SSA name if set, else vNN).
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("v%d", v.ID)
}

// LongString renders the full defining instruction.
func (v *Value) LongString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s = %s", v, v.Op)
	switch v.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %d", v.Const)
	case OpParam, OpLoadVar:
		fmt.Fprintf(&sb, " %s", v.Var)
	case OpStoreVar, OpLoadElem, OpStoreElem:
		fmt.Fprintf(&sb, " %s", v.Var)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&sb, " %s", a)
	}
	return sb.String()
}

// BlockKind says how a block transfers control.
type BlockKind uint8

// Block kinds.
const (
	BlockPlain BlockKind = iota // one successor, unconditional
	BlockIf                     // two successors: taken (Succs[0]) if Control != 0
	BlockExit                   // no successors: program end
)

// Block is a basic block.
type Block struct {
	ID      int
	Kind    BlockKind
	Values  []*Value
	Control *Value // condition for BlockIf
	Succs   []*Block
	Preds   []*Block
	Comment string // diagnostic label: "loop.header", "if.then", ...
}

// AddEdge links b -> s, maintaining both adjacency lists.
func (b *Block) AddEdge(s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// PredIndexOf returns the position of p in b.Preds, or -1. Phi arguments
// are ordered to match Preds, so this is the φ-argument slot for values
// flowing in from p.
func (b *Block) PredIndexOf(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// String returns "bNN".
func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Func is a whole program in CFG form. Entry has no predecessors; Exit
// is the unique BlockExit block.
type Func struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	nextValueID int
	nextBlockID int

	// Slab chunks NewValue/NewBlock carve from: one allocation per
	// chunk instead of one per node. A full chunk is abandoned for a
	// larger empty one — never copied, since carved pointers into the
	// old backing array stay live through Blocks and Values. The slabs
	// are owned by this Func alone (Clone builds a fresh Func), so they
	// are never shared or recycled across programs.
	vslab []Value
	bslab []Block
}

// NewFunc returns an empty function.
func NewFunc() *Func { return &Func{} }

// NewBlock appends a fresh block of the given kind.
func (f *Func) NewBlock(kind BlockKind) *Block {
	if len(f.bslab) == cap(f.bslab) {
		f.bslab = make([]Block, 0, max(16, 2*cap(f.bslab)))
	}
	f.bslab = append(f.bslab, Block{ID: f.nextBlockID, Kind: kind})
	b := &f.bslab[len(f.bslab)-1]
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue appends a fresh value to block b.
func (f *Func) NewValue(b *Block, op Op, args ...*Value) *Value {
	if len(f.vslab) == cap(f.vslab) {
		f.vslab = make([]Value, 0, max(64, 2*cap(f.vslab)))
	}
	f.vslab = append(f.vslab, Value{ID: f.nextValueID, Op: op, Args: args, Block: b})
	v := &f.vslab[len(f.vslab)-1]
	f.nextValueID++
	b.Values = append(b.Values, v)
	return v
}

// NumValues returns an upper bound on value IDs (suitable for dense
// value-indexed tables).
func (f *Func) NumValues() int { return f.nextValueID }

// NumBlocks returns an upper bound on block IDs.
func (f *Func) NumBlocks() int { return f.nextBlockID }

// String renders the function with blocks in ID order.
func (f *Func) String() string {
	var sb strings.Builder
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if b.Comment != "" {
			fmt.Fprintf(&sb, " ; %s", b.Comment)
		}
		if len(b.Preds) > 0 {
			sb.WriteString(" ; preds:")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " %s", p)
			}
		}
		sb.WriteByte('\n')
		for _, v := range b.Values {
			fmt.Fprintf(&sb, "    %s\n", v.LongString())
		}
		switch b.Kind {
		case BlockPlain:
			if len(b.Succs) > 0 {
				fmt.Fprintf(&sb, "    -> %s\n", b.Succs[0])
			}
		case BlockIf:
			fmt.Fprintf(&sb, "    if %s -> %s else %s\n", b.Control, b.Succs[0], b.Succs[1])
		case BlockExit:
			sb.WriteString("    end\n")
		}
	}
	return sb.String()
}

// Postorder returns the blocks reachable from Entry in postorder.
func (f *Func) Postorder() []*Block {
	seen := make([]bool, f.NumBlocks())
	var order []*Block
	var walk func(*Block)
	// Iterative DFS to keep deep CFGs off the call stack.
	type frame struct {
		b    *Block
		next int
	}
	walk = func(root *Block) {
		stack := []frame{{b: root}}
		seen[root.ID] = true
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.next < len(fr.b.Succs) {
				s := fr.b.Succs[fr.next]
				fr.next++
				if !seen[s.ID] {
					seen[s.ID] = true
					stack = append(stack, frame{b: s})
				}
				continue
			}
			order = append(order, fr.b)
			stack = stack[:len(stack)-1]
		}
	}
	walk(f.Entry)
	return order
}

// ReversePostorder returns reachable blocks in reverse postorder, the
// canonical iteration order for forward dataflow.
func (f *Func) ReversePostorder() []*Block {
	po := f.Postorder()
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// Values returns all values of all blocks, in block ID then program
// order. The slice is freshly allocated.
func (f *Func) Values() []*Value {
	var out []*Value
	for _, b := range f.Blocks {
		out = append(out, b.Values...)
	}
	return out
}

// VarNames returns the sorted set of scalar variable names referenced by
// LoadVar/StoreVar/Param values.
func (f *Func) VarNames() []string {
	set := map[string]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			switch v.Op {
			case OpLoadVar, OpStoreVar, OpParam:
				set[v.Var] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
