// Clone tests: dense-ID preservation, structural equality, and — the
// property clone-on-transform rests on — full independence of the copy:
// no mutation of the clone, including appends to its slices, may reach
// the original.
package ir_test

import (
	"testing"

	"beyondiv/internal/ir"
)

// buildLoopFunc hand-builds entry → header ⇄ body, header → exit with a
// φ-carried counter, exercising every pointer kind a clone must remap:
// args, φs, block controls, Succs/Preds, Entry/Exit.
func buildLoopFunc() *ir.Func {
	f := ir.NewFunc()
	entry := f.NewBlock(ir.BlockPlain)
	header := f.NewBlock(ir.BlockIf)
	body := f.NewBlock(ir.BlockPlain)
	exit := f.NewBlock(ir.BlockExit)
	f.Entry, f.Exit = entry, exit

	link := func(from, to *ir.Block) {
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	link(entry, header)
	link(header, body)
	link(header, exit)
	link(body, header)

	zero := f.NewValue(entry, ir.OpConst)
	zero.Const = 0
	limit := f.NewValue(entry, ir.OpParam)
	limit.Var = "n"

	phi := f.NewValue(header, ir.OpPhi, zero, nil)
	phi.Name = "i1"
	cond := f.NewValue(header, ir.OpLess, phi, limit)
	header.Control = cond

	one := f.NewValue(body, ir.OpConst)
	one.Const = 1
	inc := f.NewValue(body, ir.OpAdd, phi, one)
	phi.Args[1] = inc

	st := f.NewValue(body, ir.OpStoreElem, phi, inc)
	st.Var = "a"
	return f
}

func TestCloneStructure(t *testing.T) {
	f := buildLoopFunc()
	cs := &ir.CloneScratch{}
	nf := f.CloneScratch(cs)

	if got, want := nf.String(), f.String(); got != want {
		t.Fatalf("clone renders differently:\n--- original\n%s--- clone\n%s", want, got)
	}
	if nf.Entry == f.Entry || nf.Exit == f.Exit {
		t.Fatal("clone shares entry/exit blocks with the original")
	}
	for _, b := range f.Blocks {
		nb := cs.BlockByID(b.ID)
		if nb == nil || nb == b {
			t.Fatalf("block %d not freshly cloned", b.ID)
		}
		if nb.ID != b.ID {
			t.Fatalf("block ID changed: %d -> %d", b.ID, nb.ID)
		}
		for _, v := range b.Values {
			nv := cs.ValueByID(v.ID)
			if nv == nil || nv == v {
				t.Fatalf("value %d not freshly cloned", v.ID)
			}
			if nv.ID != v.ID || nv.Op != v.Op || nv.Const != v.Const || nv.Var != v.Var || nv.Name != v.Name {
				t.Fatalf("value %d fields differ after clone", v.ID)
			}
			if nv.Block != nb {
				t.Fatalf("value %d back-pointer not remapped", v.ID)
			}
			for i, a := range v.Args {
				if nv.Args[i] != cs.ValueByID(a.ID) {
					t.Fatalf("value %d arg %d not remapped", v.ID, i)
				}
			}
		}
	}
	// ID allocation continues past the original's range on the clone.
	nb := nf.Blocks[len(nf.Blocks)-1]
	v := nf.NewValue(nb, ir.OpConst)
	if v.ID != f.NumValues() {
		t.Fatalf("clone's next value ID = %d, want %d", v.ID, f.NumValues())
	}
}

func TestCloneIndependence(t *testing.T) {
	f := buildLoopFunc()
	before := f.String()
	nf := f.Clone()

	// Field mutations on the clone.
	for _, b := range nf.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpConst {
				v.Const += 100
			}
		}
	}
	// Append growth on every cloned slice: the clone's slices are carved
	// at full capacity, so appends must reallocate, never overwrite the
	// original's adjacent slab entries.
	for _, b := range nf.Blocks {
		nf.NewValue(b, ir.OpConst)
		b.Succs = append(b.Succs, b)
		b.Preds = append(b.Preds, b)
	}
	for _, b := range nf.Blocks {
		for _, v := range b.Values {
			if len(v.Args) > 0 {
				v.Args = append(v.Args, v)
			}
		}
	}
	if got := f.String(); got != before {
		t.Fatalf("mutating the clone changed the original:\n--- before\n%s--- after\n%s", before, got)
	}
}

func TestCloneScratchReuse(t *testing.T) {
	f := buildLoopFunc()
	cs := &ir.CloneScratch{}
	first := f.CloneScratch(cs)
	second := f.CloneScratch(cs)
	if first.String() != f.String() || second.String() != f.String() {
		t.Fatal("reused scratch produced a bad clone")
	}
	// The remap tables now describe the second clone only.
	if cs.ValueByID(0) == nil || cs.ValueByID(0).Block.ID != 0 {
		t.Fatal("scratch remap table invalid after reuse")
	}
	for _, b := range second.Blocks {
		if cs.BlockByID(b.ID) != b {
			t.Fatal("scratch maps to stale clone after reuse")
		}
	}
	_ = first
}
