package ir

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div",
		OpExp: "Exp", OpNeg: "Neg", OpPhi: "Phi", OpConst: "Const",
		OpLoadElem: "LoadElem", OpStoreElem: "StoreElem",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %s, want %s", op, op, want)
		}
	}
	if Op(200).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestOpPredicates(t *testing.T) {
	for _, op := range []Op{OpLess, OpLeq, OpGreater, OpGeq, OpEq, OpNeq} {
		if !op.IsCompare() {
			t.Errorf("%s should be a compare", op)
		}
		if op.IsArith() {
			t.Errorf("%s should not be arith", op)
		}
	}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpExp, OpNeg} {
		if !op.IsArith() {
			t.Errorf("%s should be arith", op)
		}
		if op.IsCompare() {
			t.Errorf("%s should not be a compare", op)
		}
	}
	if OpPhi.IsArith() || OpPhi.IsCompare() {
		t.Error("Phi is neither arith nor compare")
	}
}

func TestBuildAndPrint(t *testing.T) {
	f := NewFunc()
	entry := f.NewBlock(BlockPlain)
	f.Entry = entry
	exit := f.NewBlock(BlockExit)
	f.Exit = exit
	entry.AddEdge(exit)

	c := f.NewValue(entry, OpConst)
	c.Const = 42
	p := f.NewValue(entry, OpParam)
	p.Var = "n"
	p.Name = "n1"
	add := f.NewValue(entry, OpAdd, c, p)
	add.Name = "x1"

	s := f.String()
	for _, want := range []string{"b0:", "Const 42", "n1 = Param n", "x1 = Add", "-> b1", "end"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed func missing %q:\n%s", want, s)
		}
	}
	if add.LongString() != "x1 = Add v0 n1" {
		t.Errorf("LongString = %q", add.LongString())
	}
}

func TestArgHelpers(t *testing.T) {
	f := NewFunc()
	b := f.NewBlock(BlockPlain)
	a := f.NewValue(b, OpConst)
	c := f.NewValue(b, OpConst)
	add := f.NewValue(b, OpAdd, a, a)
	if add.ArgIndexOf(a) != 0 {
		t.Error("ArgIndexOf wrong")
	}
	if add.ArgIndexOf(c) != -1 {
		t.Error("ArgIndexOf should miss")
	}
	add.ReplaceArg(a, c)
	if add.Args[0] != c || add.Args[1] != c {
		t.Error("ReplaceArg must replace all occurrences")
	}
}

func TestEdgesAndPredIndex(t *testing.T) {
	f := NewFunc()
	a := f.NewBlock(BlockIf)
	b := f.NewBlock(BlockPlain)
	c := f.NewBlock(BlockPlain)
	a.AddEdge(b)
	a.AddEdge(c)
	b.AddEdge(c)
	if c.PredIndexOf(a) != 0 || c.PredIndexOf(b) != 1 {
		t.Errorf("pred indices wrong: %d %d", c.PredIndexOf(a), c.PredIndexOf(b))
	}
	if b.PredIndexOf(c) != -1 {
		t.Error("non-pred should be -1")
	}
}

func TestPostorder(t *testing.T) {
	// entry -> a -> exit, entry -> exit: postorder places entry last.
	f := NewFunc()
	entry := f.NewBlock(BlockIf)
	f.Entry = entry
	a := f.NewBlock(BlockPlain)
	exit := f.NewBlock(BlockExit)
	f.Exit = exit
	entry.AddEdge(a)
	entry.AddEdge(exit)
	a.AddEdge(exit)

	po := f.Postorder()
	if len(po) != 3 || po[len(po)-1] != entry {
		t.Errorf("postorder = %v", po)
	}
	rpo := f.ReversePostorder()
	if rpo[0] != entry {
		t.Errorf("rpo = %v", rpo)
	}
}

func TestVarNames(t *testing.T) {
	f := NewFunc()
	b := f.NewBlock(BlockPlain)
	for _, name := range []string{"z", "a", "m", "a"} {
		v := f.NewValue(b, OpStoreVar)
		v.Var = name
	}
	got := f.VarNames()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("VarNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VarNames = %v, want %v", got, want)
		}
	}
}

func TestValuesAndCounts(t *testing.T) {
	f := NewFunc()
	b1 := f.NewBlock(BlockPlain)
	b2 := f.NewBlock(BlockExit)
	f.Entry, f.Exit = b1, b2
	b1.AddEdge(b2)
	f.NewValue(b1, OpConst)
	f.NewValue(b2, OpConst)
	if got := len(f.Values()); got != 2 {
		t.Errorf("Values() len = %d", got)
	}
	if f.NumValues() != 2 || f.NumBlocks() != 2 {
		t.Errorf("counts = %d, %d", f.NumValues(), f.NumBlocks())
	}
}
