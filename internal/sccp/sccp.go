// Package sccp implements sparse conditional constant propagation
// (Wegman and Zadeck, TOPLAS 1991 — the paper's [WZ91]) over the SSA
// form. The classifier uses it to resolve the initial values of
// induction variables ("often the initial value coming in from outside
// the loop can be evaluated and substituted, using an algorithm such as
// constant propagation", paper §3.1).
package sccp

import (
	"fmt"

	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
	"beyondiv/internal/safemath"
	"beyondiv/internal/scratch"
	"beyondiv/internal/ssa"
)

// state is a lattice cell: Top (undetermined), a constant, or Bottom
// (varying).
type state uint8

const (
	top state = iota
	constant
	bottom
)

// cell is one lattice value.
type cell struct {
	state state
	val   int64
}

// Result holds the analysis outcome.
type Result struct {
	cells      []cell
	execBlock  []bool
	info       *ssa.Info
	constCount int
}

// Const returns the propagated constant value of v, if any. Values
// created after the analysis ran (e.g. by transformations) are unknown.
func (r *Result) Const(v *ir.Value) (int64, bool) {
	if v.ID >= len(r.cells) {
		if v.Op == ir.OpConst {
			return v.Const, true
		}
		return 0, false
	}
	c := r.cells[v.ID]
	return c.val, c.state == constant
}

// Executable reports whether the analysis proved block b reachable
// under constant-folded branches.
func (r *Result) Executable(b *ir.Block) bool { return r.execBlock[b.ID] }

// NumConstants returns how many values were proven constant.
func (r *Result) NumConstants() int { return r.constCount }

// String summarizes the constants found, for diagnostics.
func (r *Result) String() string {
	out := ""
	for _, b := range r.info.Func.Blocks {
		for _, v := range b.Values {
			if c := r.cells[v.ID]; c.state == constant {
				out += fmt.Sprintf("%s = %d\n", v, c.val)
			}
		}
	}
	return out
}

// Run performs the propagation.
func Run(info *ssa.Info) *Result { return RunWithObs(info, nil) }

// RunWithObs is Run with telemetry: an "sccp" phase span plus a counter
// of values proven constant. rec may be nil.
func RunWithObs(info *ssa.Info, rec *obs.Recorder) *Result {
	return RunGuarded(info, rec, guard.Limits{})
}

// RunGuarded is RunWithObs under resource limits: every worklist pop
// charges the phase's step budget, so a pathological lattice cannot
// spin the propagation forever (the budget panics with a
// *guard.LimitError, contained at the facade). Folds that would
// overflow int64 degrade the cell to bottom — "varying" — which is the
// conservative direction for every consumer, and are counted under
// "sccp.fold.overflow".
func RunGuarded(info *ssa.Info, rec *obs.Recorder, lim guard.Limits) *Result {
	return RunScratch(info, rec, lim, nil)
}

// solveScratch holds the propagation's transient dense tables, reusable
// across runs via the scratch arena. Everything retained in the Result
// is freshly allocated.
type solveScratch struct {
	users     [][]*ir.Value // value ID → consuming values (SSA edges)
	controlOf [][]*ir.Block // value ID → blocks whose branch condition it is
	blocks    []*ir.Block   // block ID → block
	edgeSet   []bool        // from.ID*2 + succ slot → edge executable
	flowWork  []flowEdge    // CFG edges to process
	ssaWork   []*ir.Value   // values whose inputs changed
	inSSAWork []bool        // value ID → already queued
}

// RunScratch is RunGuarded drawing its transient working tables from
// ar, the run's scratch arena; nil allocates fresh tables for a
// one-shot run.
func RunScratch(info *ssa.Info, rec *obs.Recorder, lim guard.Limits, ar *scratch.Arena) *Result {
	span := rec.Phase("sccp")
	defer span.End()
	budget := lim.Budget("sccp")
	f := info.Func
	r := &Result{
		cells:     make([]cell, f.NumValues()),
		execBlock: make([]bool, f.NumBlocks()),
		info:      info,
	}

	var scr *solveScratch
	if ar != nil {
		scr = scratch.Get[solveScratch](&ar.SCCP)
	} else {
		scr = &solveScratch{}
	}
	users := scratch.GrowReuse(scr.users, f.NumValues())
	controlOf := scratch.GrowReuse(scr.controlOf, f.NumValues())
	blocks := scratch.Grow(scr.blocks, f.NumBlocks())
	for _, b := range f.Blocks {
		blocks[b.ID] = b
		for _, v := range b.Values {
			for _, a := range v.Args {
				users[a.ID] = append(users[a.ID], v)
			}
		}
		if b.Control != nil {
			controlOf[b.Control.ID] = append(controlOf[b.Control.ID], b)
		}
	}

	// Executable CFG edges, indexed from.ID*2 + successor slot (every
	// block has at most two successors); φ meets consult it. A
	// conditional with both arms targeting the same block marks and
	// tests both slots together, preserving the collapsed semantics the
	// (from,to)-keyed set had.
	execEdge := edgeSet(scratch.Grow(scr.edgeSet, 2*f.NumBlocks()))

	flowWork := scr.flowWork[:0] // CFG edges to process
	ssaWork := scr.ssaWork[:0]   // values whose inputs changed
	inSSAWork := scratch.Grow(scr.inSSAWork, f.NumValues())
	defer func() {
		scr.users, scr.controlOf, scr.blocks = users, controlOf, blocks
		scr.edgeSet, scr.inSSAWork = []bool(execEdge), inSSAWork
		scr.flowWork, scr.ssaWork = flowWork[:0], ssaWork[:0]
	}()

	pushSSA := func(v *ir.Value) {
		if !inSSAWork[v.ID] {
			inSSAWork[v.ID] = true
			ssaWork = append(ssaWork, v)
		}
	}

	// lower updates v's cell to at most next, pushing users on change.
	lower := func(v *ir.Value, next cell) {
		cur := r.cells[v.ID]
		if cur.state == bottom {
			return
		}
		if next.state == cur.state && (cur.state != constant || next.val == cur.val) {
			return
		}
		// Monotonic: top -> constant -> bottom.
		if cur.state == constant && next.state == constant && cur.val != next.val {
			next = cell{state: bottom}
		}
		if next.state < cur.state {
			return
		}
		r.cells[v.ID] = next
		for _, u := range users[v.ID] {
			pushSSA(u)
		}
		for _, b := range controlOf[v.ID] {
			if r.execBlock[b.ID] {
				flowWork = appendTargets(flowWork, b, next)
			}
		}
	}

	evalValue := func(v *ir.Value) {
		switch v.Op {
		case ir.OpConst:
			lower(v, cell{state: constant, val: v.Const})
		case ir.OpParam, ir.OpLoadElem:
			lower(v, cell{state: bottom})
		case ir.OpCopy:
			lower(v, r.cells[v.Args[0].ID])
		case ir.OpStoreElem:
			// A store's value is the value stored (paper §5.1).
			lower(v, r.cells[v.Args[1].ID])
		case ir.OpPhi:
			meet := cell{state: top}
			for i, a := range v.Args {
				if !execEdge.has(v.Block.Preds[i], v.Block.ID) {
					continue
				}
				meet = meetCells(meet, r.cells[a.ID])
			}
			lower(v, meet)
		case ir.OpNeg:
			x := r.cells[v.Args[0].ID]
			switch x.state {
			case constant:
				if n, ok := safemath.Neg(x.val); ok {
					lower(v, cell{state: constant, val: n})
				} else {
					rec.Add("sccp.fold.overflow", 1)
					lower(v, cell{state: bottom})
				}
			case bottom:
				lower(v, cell{state: bottom})
			}
		default:
			x, y := r.cells[v.Args[0].ID], r.cells[v.Args[1].ID]
			if x.state == constant && y.state == constant {
				if c, ok := foldBinary(v.Op, x.val, y.val); ok {
					lower(v, cell{state: constant, val: c})
				} else {
					rec.Add("sccp.fold.overflow", 1)
					lower(v, cell{state: bottom})
				}
			} else if x.state == bottom || y.state == bottom {
				// A few operators are constant with one varying input.
				if c, ok := foldPartial(v.Op, x, y); ok {
					lower(v, cell{state: constant, val: c})
				} else {
					lower(v, cell{state: bottom})
				}
			}
		}
	}

	// Seed with the entry block.
	markBlock := func(b *ir.Block) {
		if r.execBlock[b.ID] {
			return
		}
		r.execBlock[b.ID] = true
		for _, v := range b.Values {
			pushSSA(v)
		}
	}
	markBlock(f.Entry)

	// Entry's outgoing edges under the current (empty) lattice: a plain
	// block contributes its single edge now; a conditional contributes
	// its edges once its control value lowers (the controlOf hook).
	flowWork = appendCurrentOut(flowWork, f.Entry, r)

	for len(flowWork) > 0 || len(ssaWork) > 0 {
		for len(ssaWork) > 0 {
			budget.Step()
			v := ssaWork[len(ssaWork)-1]
			ssaWork = ssaWork[:len(ssaWork)-1]
			inSSAWork[v.ID] = false
			if r.execBlock[v.Block.ID] {
				evalValue(v)
			}
		}
		if len(flowWork) > 0 {
			budget.Step()
			e := flowWork[len(flowWork)-1]
			flowWork = flowWork[:len(flowWork)-1]
			from := blocks[e.from]
			if execEdge.has(from, e.to) {
				continue
			}
			execEdge.mark(from, e.to)
			to := blocks[e.to]
			// Re-evaluate φs in the target: a new edge became executable.
			for _, v := range to.Values {
				if v.Op == ir.OpPhi {
					pushSSA(v)
				} else {
					break
				}
			}
			first := !r.execBlock[to.ID]
			markBlock(to)
			if first {
				flowWork = appendCurrentOut(flowWork, to, r)
			}
		}
	}

	for _, c := range r.cells {
		if c.state == constant {
			r.constCount++
		}
	}
	rec.Add("sccp.constants", int64(r.constCount))
	return r
}

// edgeSet tracks executable CFG edges densely: slot from.ID*2+i is edge
// i of block from. Both has and mark scan every successor slot matching
// the target block so that a two-armed branch into one block behaves as
// a single collapsed edge, exactly like a (from,to)-keyed set.
type edgeSet []bool

func (s edgeSet) has(from *ir.Block, to int) bool {
	for i, succ := range from.Succs {
		if succ.ID == to && s[from.ID*2+i] {
			return true
		}
	}
	return false
}

func (s edgeSet) mark(from *ir.Block, to int) {
	for i, succ := range from.Succs {
		if succ.ID == to {
			s[from.ID*2+i] = true
		}
	}
}

func meetCells(a, b cell) cell {
	switch {
	case a.state == top:
		return b
	case b.state == top:
		return a
	case a.state == bottom || b.state == bottom:
		return cell{state: bottom}
	case a.val == b.val:
		return a
	default:
		return cell{state: bottom}
	}
}

// flowEdge identifies a CFG edge by block IDs.
type flowEdge struct{ from, to int }

// appendTargets appends the executable out-edges of b given its control
// lattice value.
func appendTargets(dst []flowEdge, b *ir.Block, ctl cell) []flowEdge {
	switch b.Kind {
	case ir.BlockPlain:
		return append(dst, flowEdge{b.ID, b.Succs[0].ID})
	case ir.BlockExit:
		return dst
	}
	switch ctl.state {
	case constant:
		if ctl.val != 0 {
			return append(dst, flowEdge{b.ID, b.Succs[0].ID})
		}
		return append(dst, flowEdge{b.ID, b.Succs[1].ID})
	case bottom:
		return append(dst, flowEdge{b.ID, b.Succs[0].ID}, flowEdge{b.ID, b.Succs[1].ID})
	default: // top: not yet known, wait
		return dst
	}
}

// appendCurrentOut appends the out-edges known executable under b's
// current control lattice; a still-top conditional contributes nothing
// yet (the controlOf hook in lower fires when it resolves).
func appendCurrentOut(dst []flowEdge, b *ir.Block, r *Result) []flowEdge {
	if b.Kind == ir.BlockIf {
		return appendTargets(dst, b, r.cells[b.Control.ID])
	}
	return appendTargets(dst, b, cell{state: bottom})
}

// foldBinary evaluates op on constants with the shared interpreter
// semantics (x/0 == 0; x**k == 0 for k < 0). It reports ok=false when
// the exact result does not fit in int64: the interpreter wraps there,
// so folding would bake a wrapped value into the lattice and the caller
// must degrade to bottom instead. Exponentiation is overflow-checked
// square-and-multiply — a hostile `x ** 9e18` costs at most 63
// iterations instead of one loop iteration per unit of the exponent.
func foldBinary(op ir.Op, x, y int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return safemath.Add(x, y)
	case ir.OpSub:
		return safemath.Sub(x, y)
	case ir.OpMul:
		return safemath.Mul(x, y)
	case ir.OpDiv:
		if y == 0 {
			return 0, true
		}
		if x == safemath.MinInt64 && y == -1 {
			return 0, false // the one quotient that overflows
		}
		return x / y, true
	case ir.OpExp:
		if y < 0 {
			return 0, true
		}
		return safemath.Pow(x, y)
	case ir.OpLess:
		return b2i(x < y), true
	case ir.OpLeq:
		return b2i(x <= y), true
	case ir.OpGreater:
		return b2i(x > y), true
	case ir.OpGeq:
		return b2i(x >= y), true
	case ir.OpEq:
		return b2i(x == y), true
	case ir.OpNeq:
		return b2i(x != y), true
	}
	panic(fmt.Sprintf("sccp: cannot fold %s", op))
}

// foldPartial folds operators that are constant with a single known
// operand: x*0, 0*x, and 0**k for k known positive are the useful cases.
func foldPartial(op ir.Op, x, y cell) (int64, bool) {
	if op == ir.OpMul {
		if x.state == constant && x.val == 0 {
			return 0, true
		}
		if y.state == constant && y.val == 0 {
			return 0, true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
