package sccp

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
	"beyondiv/internal/ssa"
)

func run(t *testing.T, src string) (*ssa.Info, *Result) {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	info := ssa.Build(cfgbuild.Build(file).Func)
	return info, Run(info)
}

func valueByName(info *ssa.Info, name string) *ir.Value {
	for _, b := range info.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

func wantConst(t *testing.T, r *Result, v *ir.Value, want int64) {
	t.Helper()
	if v == nil {
		t.Fatal("value not found")
	}
	got, ok := r.Const(v)
	if !ok {
		t.Fatalf("%s not constant", v)
	}
	if got != want {
		t.Errorf("%s = %d, want %d", v, got, want)
	}
}

func TestStraightLineFolding(t *testing.T) {
	info, r := run(t, "i = 2\nj = i * 3 + 4\nk = j - j\n")
	wantConst(t, r, valueByName(info, "i1"), 2)
	wantConst(t, r, valueByName(info, "j1"), 10)
	wantConst(t, r, valueByName(info, "k1"), 0)
}

func TestParamIsVarying(t *testing.T) {
	info, r := run(t, "j = n + 1\n")
	if _, ok := r.Const(valueByName(info, "j1")); ok {
		t.Error("n+1 must not be constant")
	}
}

func TestPhiMeetSameConstant(t *testing.T) {
	// Both branches assign 7: the join φ is the constant 7.
	info, r := run(t, "if n > 0 { x = 7 } else { x = 7 }\ny = x + 1\n")
	wantConst(t, r, valueByName(info, "y1"), 8)
}

func TestPhiMeetDifferent(t *testing.T) {
	info, r := run(t, "if n > 0 { x = 7 } else { x = 8 }\ny = x + 1\n")
	if _, ok := r.Const(valueByName(info, "y1")); ok {
		t.Error("join of 7 and 8 must vary")
	}
}

func TestDeadBranchIgnored(t *testing.T) {
	// The condition folds to true, so only x = 7 reaches the join.
	info, r := run(t, "c = 1\nif c > 0 { x = 7 } else { x = 8 }\ny = x + 1\n")
	wantConst(t, r, valueByName(info, "y1"), 8)
	// The else block must be non-executable.
	for _, b := range info.Func.Blocks {
		if b.Comment == "if.else" && r.Executable(b) {
			t.Error("dead else branch marked executable")
		}
	}
}

func TestConditionalConstantThroughLoop(t *testing.T) {
	// x never changes inside the loop: φ(x1, x1) folds to 5.
	info, r := run(t, `
x = 5
i = 0
loop {
    i = i + x
    if i > 100 { exit }
}
y = x + 1
`)
	wantConst(t, r, valueByName(info, "y1"), 6)
	// i varies.
	if _, ok := r.Const(valueByName(info, "i2")); ok {
		t.Error("loop φ of i must vary")
	}
}

func TestMulByZero(t *testing.T) {
	info, r := run(t, "z = n * 0\nw = 0 * n\n")
	wantConst(t, r, valueByName(info, "z1"), 0)
	wantConst(t, r, valueByName(info, "w1"), 0)
}

func TestDivExpSemantics(t *testing.T) {
	info, r := run(t, "a = 7 / 0\nb = 2 ** 10\nc = 2 ** (0-3)\nd = 7 / 2\n")
	wantConst(t, r, valueByName(info, "a1"), 0)
	wantConst(t, r, valueByName(info, "b1"), 1024)
	wantConst(t, r, valueByName(info, "c1"), 0)
	wantConst(t, r, valueByName(info, "d1"), 3)
}

func TestConstantLoopCollapses(t *testing.T) {
	// Condition 1 > 2 is false: body never executes; k stays 1.
	info, r := run(t, "k = 1\nwhile 1 > 2 { k = k + 1 }\nm = k\n")
	wantConst(t, r, valueByName(info, "m1"), 1)
}

// TestQuickSoundness: every value SCCP proves constant must equal the
// value observed at runtime, for random programs and inputs.
func TestQuickSoundness(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64, p1, p2 int8) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		info := ssa.Build(cfgbuild.Build(file).Func)
		r := Run(info)

		ok := true
		hooks := interp.Hooks{
			OnEval: func(v *ir.Value, val int64) {
				if c, isConst := r.Const(v); isConst && c != val {
					t.Logf("seed %d: %s folded to %d but evaluated to %d", seed, v.LongString(), c, val)
					ok = false
				}
			},
			OnBlock: func(b *ir.Block) {
				if !r.Executable(b) {
					t.Logf("seed %d: non-executable block %s ran", seed, b)
					ok = false
				}
			},
		}
		cfg := interp.Config{
			Params:   map[string]int64{"n": int64(p1 % 8), "x": int64(p2), "i": 1, "j": 2, "k": 3},
			MaxSteps: 100_000,
		}
		if _, err := interp.RunSSAHooked(info, cfg, hooks); err != nil {
			return true // step limit: nothing to check
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSCCP(b *testing.B) {
	file, err := parse.File(progen.MixedClasses(20))
	if err != nil {
		b.Fatal(err)
	}
	info := ssa.Build(cfgbuild.Build(file).Func)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(info)
	}
}
