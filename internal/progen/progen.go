// Package progen generates mini-language programs: random structured
// programs for parser/SSA fuzzing, and parameterized synthetic workloads
// for the scaling and unified-vs-classical benchmarks (experiments E16 and
// E17 in DESIGN.md).
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen generates random programs. The zero value is not usable; call New.
type Gen struct {
	maxDepth int
	maxStmts int
}

// New returns a generator with sensible defaults for fuzzing.
func New() *Gen {
	return &Gen{maxDepth: 3, maxStmts: 5}
}

var scalars = []string{"i", "j", "k", "l", "m", "n", "t", "x", "y"}
var arrays = []string{"a", "b", "c"}

// Program produces a random structured program from seed. Programs are
// always syntactically valid; variables may be used before definition
// (they are then loop-invariant parameters).
func (g *Gen) Program(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	n := 1 + rng.Intn(g.maxStmts)
	for i := 0; i < n; i++ {
		g.stmt(&sb, rng, 0, false)
	}
	return sb.String()
}

func (g *Gen) stmt(sb *strings.Builder, rng *rand.Rand, depth int, inLoop bool) {
	ind := strings.Repeat("    ", depth)
	choice := rng.Intn(10)
	if depth >= g.maxDepth {
		choice = rng.Intn(3) // assignments only
	}
	switch {
	case choice < 3: // scalar assignment
		fmt.Fprintf(sb, "%s%s = %s\n", ind, g.scalar(rng), g.expr(rng, 0))
	case choice < 4: // array assignment
		fmt.Fprintf(sb, "%s%s[%s] = %s\n", ind, g.array(rng), g.expr(rng, 1), g.expr(rng, 0))
	case choice < 6: // for loop
		fmt.Fprintf(sb, "%sfor %s = %s to %s {\n", ind, g.scalar(rng), g.expr(rng, 1), g.expr(rng, 1))
		g.body(sb, rng, depth+1, true)
		fmt.Fprintf(sb, "%s}\n", ind)
	case choice < 7: // while loop
		fmt.Fprintf(sb, "%swhile %s < %s {\n", ind, g.scalar(rng), g.expr(rng, 1))
		g.body(sb, rng, depth+1, true)
		fmt.Fprintf(sb, "%s}\n", ind)
	case choice < 8 && inLoop: // loop with guaranteed exit
		fmt.Fprintf(sb, "%sloop {\n", ind)
		g.body(sb, rng, depth+1, true)
		fmt.Fprintf(sb, "%s    if %s > %s { exit }\n", ind, g.scalar(rng), g.expr(rng, 1))
		fmt.Fprintf(sb, "%s}\n", ind)
	default: // if / if-else
		fmt.Fprintf(sb, "%sif %s %s %s {\n", ind, g.expr(rng, 1), relop(rng), g.expr(rng, 1))
		g.body(sb, rng, depth+1, inLoop)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(sb, "%s} else {\n", ind)
			g.body(sb, rng, depth+1, inLoop)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	}
}

func (g *Gen) body(sb *strings.Builder, rng *rand.Rand, depth int, inLoop bool) {
	n := 1 + rng.Intn(g.maxStmts)
	for i := 0; i < n; i++ {
		g.stmt(sb, rng, depth, inLoop)
	}
}

func (g *Gen) scalar(rng *rand.Rand) string { return scalars[rng.Intn(len(scalars))] }
func (g *Gen) array(rng *rand.Rand) string  { return arrays[rng.Intn(len(arrays))] }

func relop(rng *rand.Rand) string {
	return []string{"<", "<=", ">", ">=", "==", "!="}[rng.Intn(6)]
}

// expr builds a random arithmetic expression; depth>0 keeps it small.
func (g *Gen) expr(rng *rand.Rand, depth int) string {
	if depth > 1 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return fmt.Sprint(rng.Intn(20) + 1)
		}
		return g.scalar(rng)
	}
	op := []string{"+", "-", "*"}[rng.Intn(3)]
	return fmt.Sprintf("%s %s %s", g.expr(rng, depth+1), op, g.expr(rng, depth+1))
}

// ---- Synthetic benchmark workloads ----

// StraightLineLoop returns a single loop containing n linear-IV update
// statements over n distinct variables, used for the linearity scaling
// experiment (E16): the SSA graph grows linearly with n.
func StraightLineLoop(n int) string {
	var sb strings.Builder
	for v := 0; v < n; v++ {
		fmt.Fprintf(&sb, "v%d = %d\n", v, v)
	}
	sb.WriteString("for i = 1 to n {\n")
	for v := 0; v < n; v++ {
		fmt.Fprintf(&sb, "    v%d = v%d + %d\n", v, v, v%7+1)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// MutualChain returns a loop with a chain of k mutually-defined linear
// induction variables (the paper's L2 pattern generalized): v0 feeds v1
// feeds ... feeds v_{k-1} feeds v0.
func MutualChain(k int) string {
	var sb strings.Builder
	for v := 0; v < k; v++ {
		fmt.Fprintf(&sb, "v%d = %d\n", v, v)
	}
	sb.WriteString("for i = 1 to n {\n")
	for v := 0; v < k; v++ {
		fmt.Fprintf(&sb, "    v%d = v%d + %d\n", (v+1)%k, v, v+1)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// MixedClasses returns a loop exercising every classification class:
// linear, polynomial, geometric, wrap-around, periodic, and monotonic,
// replicated reps times over distinct variable groups.
func MixedClasses(reps int) string {
	var sb strings.Builder
	for r := 0; r < reps; r++ {
		fmt.Fprintf(&sb, "li%d = 0\npj%d = 1\npk%d = 1\nge%d = 1\nwa%d = n\npa%d = 1\npb%d = 2\nmo%d = 0\n",
			r, r, r, r, r, r, r, r)
	}
	sb.WriteString("for i = 1 to n {\n")
	for r := 0; r < reps; r++ {
		fmt.Fprintf(&sb, "    li%d = li%d + 3\n", r, r)           // linear
		fmt.Fprintf(&sb, "    pj%d = pj%d + i\n", r, r)           // quadratic
		fmt.Fprintf(&sb, "    pk%d = pk%d + pj%d + 1\n", r, r, r) // cubic
		fmt.Fprintf(&sb, "    ge%d = ge%d * 2 + 1\n", r, r)       // geometric
		fmt.Fprintf(&sb, "    x%d = a[wa%d]\n", r, r)             // use of wrap-around
		fmt.Fprintf(&sb, "    wa%d = i\n", r)                     // wrap-around
		fmt.Fprintf(&sb, "    t%d = pa%d\n", r, r)                // periodic swap
		fmt.Fprintf(&sb, "    pa%d = pb%d\n", r, r)
		fmt.Fprintf(&sb, "    pb%d = t%d\n", r, r)
		fmt.Fprintf(&sb, "    if a[i] > 0 {\n        mo%d = mo%d + 1\n    } else {\n        mo%d = mo%d + 2\n    }\n",
			r, r, r, r) // monotonic
	}
	sb.WriteString("}\n")
	return sb.String()
}

// NestedLoops returns a nest of the given depth where each level's
// variable accumulates into a shared counter, producing a polynomial
// of order depth (triangular-style nesting, generalizing Figure 9).
func NestedLoops(depth int) string {
	var sb strings.Builder
	sb.WriteString("s = 0\n")
	for d := 0; d < depth; d++ {
		ind := strings.Repeat("    ", d)
		bound := "n"
		if d > 0 {
			bound = fmt.Sprintf("i%d", d-1)
		}
		fmt.Fprintf(&sb, "%sfor i%d = 1 to %s {\n", ind, d, bound)
	}
	ind := strings.Repeat("    ", depth)
	fmt.Fprintf(&sb, "%ss = s + 1\n", ind)
	for d := depth - 1; d >= 0; d-- {
		fmt.Fprintf(&sb, "%s}\n", strings.Repeat("    ", d))
	}
	return sb.String()
}

// DerivedChain returns a loop with a chain of k derived induction
// variables where each link is defined before (alphabetically and
// textually) the variable it derives from: w000 = w001 + 1, ...,
// w<k-1> = 2*z + 1. A classical scan in name order discovers exactly
// one link per fixpoint round, so the baseline needs k rounds (O(k²)
// work) while the SSA classifier handles the chain in its single pass —
// the paper's iterative-vs-one-pass claim made measurable (E17).
func DerivedChain(k int) string {
	var sb strings.Builder
	sb.WriteString("for z = 1 to n {\n")
	for i := 0; i < k-1; i++ {
		fmt.Fprintf(&sb, "    w%03d = w%03d + 1\n", i, i+1)
	}
	fmt.Fprintf(&sb, "    w%03d = 2 * z + 1\n", k-1)
	sb.WriteString("    b[w000] = z\n}\n")
	return sb.String()
}

// Large returns a program with n independent top-level loops — the
// parallel tier's benchmark shape. Each loop carries its own linear,
// derived and polynomial induction variables plus eight affine
// subscripted accesses to a loop-private array (~26 testable pairs per
// loop), so both fan-out axes scale with n: the classifier sees n
// sibling root subtrees and the dependence tester ~26·n pairs, with no
// work shared between loops.
func Large(n int) string {
	var sb strings.Builder
	for r := 0; r < n; r++ {
		fmt.Fprintf(&sb, "s%d = 0\nq%d = 1\n", r, r)
		fmt.Fprintf(&sb, "L%d: for i%d = 1 to 100 {\n", r, r)
		fmt.Fprintf(&sb, "    s%d = s%d + 2\n", r, r)           // linear
		fmt.Fprintf(&sb, "    d%d = 3 * i%d + %d\n", r, r, r%5) // derived linear
		fmt.Fprintf(&sb, "    q%d = q%d + i%d\n", r, r, r)      // quadratic
		fmt.Fprintf(&sb, "    a%d[i%d] = a%d[i%d + 1] + 1\n", r, r, r, r)
		fmt.Fprintf(&sb, "    a%d[2 * i%d] = a%d[2 * i%d + 3] + 1\n", r, r, r, r)
		fmt.Fprintf(&sb, "    a%d[d%d] = a%d[s%d] + 1\n", r, r, r, r)
		fmt.Fprintf(&sb, "    a%d[3 * i%d + 1] = a%d[q%d] + 1\n", r, r, r, r)
		sb.WriteString("}\n")
	}
	return sb.String()
}

// DepWorkload generates a loop nest whose subscripts exercise the
// dependence tester's decision paths: affine strides and offsets,
// wrap-around indices, periodic selectors, monotonic pack indices, and
// polynomial accumulators, drawn deterministically from seed.
func DepWorkload(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder

	// Optional prologue state.
	sb.WriteString("p = 1\nq = 2\nw = 0\nacc = 0\nprev = 9\n")

	bound := 6 + rng.Intn(20)
	nest := rng.Intn(2) == 0
	fmt.Fprintf(&sb, "L1: for i = 1 to %d {\n", bound)
	indent := "    "
	inner := ""
	if nest {
		innerBound := 3 + rng.Intn(6)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, "    L2: for j = 1 to %d {\n", innerBound)
		} else {
			sb.WriteString("    L2: for j = 1 to i {\n")
		}
		indent = "        "
		inner = "j"
	}

	sub := func() string {
		base := []string{"i", "i", "2 * i", "3 * i", "acc", "w", "p", "prev"}[rng.Intn(8)]
		if inner != "" && rng.Intn(2) == 0 {
			base = fmt.Sprintf("%d * i + j", 4+rng.Intn(8))
		}
		off := rng.Intn(7) - 3
		if off == 0 {
			return base
		}
		return fmt.Sprintf("%s + %d", base, off)
	}
	stmts := 1 + rng.Intn(3)
	for k := 0; k < stmts; k++ {
		fmt.Fprintf(&sb, "%sa[%s] = a[%s] + 1\n", indent, sub(), sub())
	}
	if inner != "" {
		sb.WriteString("    }\n")
	}
	// Update the interesting scalars at the outer level.
	sb.WriteString("    acc = acc + i\n")
	sb.WriteString("    prev = i\n")
	sb.WriteString("    if a[i] > 0 {\n        w = w + 1\n        b[w] = i\n    }\n")
	sb.WriteString("    t = p\n    p = q\n    q = t\n")
	sb.WriteString("}\n")
	return sb.String()
}
