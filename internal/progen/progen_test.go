package progen

import (
	"strings"
	"testing"

	"beyondiv/internal/parse"
)

func TestProgramsParse(t *testing.T) {
	g := New()
	for seed := int64(0); seed < 500; seed++ {
		src := g.Program(seed)
		if _, err := parse.File(src); err != nil {
			t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	g := New()
	if g.Program(42) != g.Program(42) {
		t.Error("same seed must give same program")
	}
	if g.Program(1) == g.Program(2) {
		t.Error("different seeds should differ (overwhelmingly)")
	}
}

func TestStraightLineLoop(t *testing.T) {
	src := StraightLineLoop(10)
	if _, err := parse.File(src); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(src, "\n"); got < 12 {
		t.Errorf("too few lines: %d", got)
	}
	if !strings.Contains(src, "v9 = v9 +") {
		t.Errorf("missing expected statement:\n%s", src)
	}
}

func TestMutualChain(t *testing.T) {
	src := MutualChain(4)
	if _, err := parse.File(src); err != nil {
		t.Fatal(err)
	}
	// v0 feeds v1 ... wraps to v0.
	if !strings.Contains(src, "v0 = v3 +") {
		t.Errorf("chain does not wrap:\n%s", src)
	}
}

func TestMixedClasses(t *testing.T) {
	src := MixedClasses(3)
	if _, err := parse.File(src); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"li2", "pj0", "ge1", "wa2", "mo0"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %s in workload:\n%s", want, src)
		}
	}
}

func TestNestedLoops(t *testing.T) {
	for depth := 1; depth <= 5; depth++ {
		src := NestedLoops(depth)
		if _, err := parse.File(src); err != nil {
			t.Fatalf("depth %d: %v\n%s", depth, err, src)
		}
		if got := strings.Count(src, "for "); got != depth {
			t.Errorf("depth %d: %d for-loops", depth, got)
		}
	}
}

func TestDerivedChain(t *testing.T) {
	src := DerivedChain(5)
	if _, err := parse.File(src); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if !strings.Contains(src, "w000 = w001 + 1") || !strings.Contains(src, "w004 = 2 * z + 1") {
		t.Errorf("chain malformed:\n%s", src)
	}
}
