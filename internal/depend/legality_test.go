package depend

import (
	"testing"
)

// TestParallelizable: a[i] = a[i] + 1 has no carried dependence; the
// recurrence a[i] = a[i-1] does.
func TestParallelizable(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 40 {
    a[i] = a[i] + 1
}
`)
	l := r.Analysis.LoopByLabel("L1")
	if ok, blocking := Parallelizable(r, l); !ok {
		t.Errorf("independent loop not parallelizable: %v", blocking)
	}

	r = analyze(t, `
L1: for i = 1 to 40 {
    a[i] = a[i - 1] + 1
}
`)
	l = r.Analysis.LoopByLabel("L1")
	if ok, blocking := Parallelizable(r, l); ok || len(blocking) == 0 {
		t.Error("recurrence must block parallelization")
	}
}

// TestParallelizablePack: the §4.4 pack loop with a strictly monotonic
// index has only the loop-independent (=) flow on b — the loop
// parallelizes, the paper's PACK-intrinsic observation.
func TestParallelizablePack(t *testing.T) {
	r := analyze(t, `
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
        e[i] = b[k]
    }
}
`)
	l := r.Analysis.LoopByLabel("L15")
	if ok, blocking := Parallelizable(r, l); !ok {
		t.Errorf("pack loop should parallelize (scatter): %v", blocking)
	}
}

// TestInterchange reproduces §6.1's punchline: the wavefront recurrence
// with distances (1,0)+(0,1) interchanges legally, while a (<,>)
// dependence — what normalization manufactures — blocks it.
func TestInterchange(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 8 {
    L2: for j = 1 to 8 {
        a[i * 100 + j] = a[i * 100 + j - 100] + a[i * 100 + j - 1]
    }
}
`)
	outer := r.Analysis.LoopByLabel("L1")
	inner := r.Analysis.LoopByLabel("L2")
	if ok, blocking := InterchangeLegal(r, outer, inner); !ok {
		t.Errorf("wavefront interchange should be legal: %v", blocking)
	}

	// A true (<, >) dependence: with subscript 100i - j, a read offset
	// of -101 is hit from (i+1, j-1) — distance (1, -1).
	r = analyze(t, `
L1: for i = 1 to 8 {
    L2: for j = 1 to 8 {
        a[i * 100 - j] = a[i * 100 - j - 101] + 1
    }
}
`)
	outer = r.Analysis.LoopByLabel("L1")
	inner = r.Analysis.LoopByLabel("L2")
	if ok, _ := InterchangeLegal(r, outer, inner); ok {
		t.Errorf("(<, >) dependence must block interchange:\n%s", r.Report())
	}
	// And the single-transformation fix: skew by 1, then interchange.
	dists, okD := DistanceVectors2(r, outer, inner)
	if !okD {
		t.Fatalf("no exact distances:\n%s", r.Report())
	}
	if tm, okT := FindSkewedInterchange(dists, 4); !okT {
		t.Error("skewed interchange should repair (1,-1)")
	} else if tm == Interchange {
		t.Error("plain interchange cannot be the answer here")
	}
}

// TestUnimodularSkewedInterchange: a (1, -1) distance blocks plain
// interchange but skew-by-1 then interchange is legal — "loop skewing
// and loop interchanging as a single transformation" (§6.1).
func TestUnimodularSkewedInterchange(t *testing.T) {
	dists := [][2]int64{{1, -1}}
	if UnimodularLegal(Interchange, dists) {
		t.Error("plain interchange must be illegal for (1,-1)")
	}
	tm, ok := FindSkewedInterchange(dists, 4)
	if !ok {
		t.Fatal("no legal skew found")
	}
	if got, ok := tm.Apply([2]int64{1, -1}); !ok || !(got[0] > 0 || (got[0] == 0 && got[1] >= 0)) {
		t.Errorf("transformed distance %v not lex positive", got)
	}
	if tm.Det() != -1 && tm.Det() != 1 {
		t.Errorf("determinant = %d, want ±1", tm.Det())
	}

	// The wavefront pair needs no skew at all.
	tm2, ok := FindSkewedInterchange([][2]int64{{1, 0}, {0, 1}}, 4)
	if !ok || tm2 != Interchange {
		t.Errorf("wavefront should interchange with f=0, got %v (%v)", tm2, ok)
	}
}

// TestUnimodularFromAnalysis wires the pieces end to end: extract exact
// distance vectors from the L23 rectangular nest and check interchange
// legality through the matrix machinery.
func TestUnimodularFromAnalysis(t *testing.T) {
	r := analyze(t, `
L23: for i = 1 to 9 {
    L24: for j = 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`)
	outer := r.Analysis.LoopByLabel("L23")
	inner := r.Analysis.LoopByLabel("L24")
	dists, ok := DistanceVectors2(r, outer, inner)
	if !ok || len(dists) == 0 {
		t.Fatalf("no exact distances: %v %v", dists, ok)
	}
	for _, d := range dists {
		if d != [2]int64{1, 0} {
			t.Errorf("distance = %v, want (1, 0)", d)
		}
	}
	if !UnimodularLegal(Interchange, dists) {
		t.Error("(1,0) should interchange legally")
	}
}

// TestMatrixOps covers the algebra helpers.
func TestMatrixOps(t *testing.T) {
	if Interchange.Det() != -1 {
		t.Error("interchange det")
	}
	if Skew(3).Det() != 1 {
		t.Error("skew det")
	}
	// Skew then interchange: rows swapped after adding 3i to j.
	tm := Skew(3).Mul(Interchange)
	if got, ok := tm.Apply([2]int64{1, 0}); !ok || got != [2]int64{3, 1} {
		t.Errorf("composite apply = %v", got)
	}
	if tm.String() == "" {
		t.Error("empty string rendering")
	}
}
