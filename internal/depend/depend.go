// Package depend implements the data dependence testing of §6: for each
// pair of subscripted references to the same array it constructs a
// dependence equation from the induction-variable classifications and
// decides whether integer solutions exist within the loop bounds,
// refining by direction vector.
//
// Beyond the classical affine tests (GCD, Banerjee bounds with direction
// constraints, and exact enumeration of small iteration spaces), the
// tester exploits the paper's extended classes:
//
//   - wrap-around subscripts shift onto their post-warm-up induction
//     sequence, and the dependence is flagged as holding only after the
//     wrap-around order's iterations (§6);
//   - periodic subscripts of one family with distinct ring values
//     translate an `=` solution on the family into a ≠ / modular
//     distance constraint on the iterations (§6, loop L22);
//   - monotonic subscripts of one family give (=) directions when
//     strict and (≤) when not (§6 and Figure 10).
package depend

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/scratch"
)

// Access is one array reference.
type Access struct {
	Value *ir.Value // LoadElem or StoreElem
	Array string
	Write bool
	Loop  *loops.Loop // innermost enclosing loop (nil outside loops)
	// Order is the access's program position for intra-iteration
	// ordering.
	Order int

	// Per-access test setup, derived once by the tester and reused
	// across the O(pairs) loop: the subscript classification, its
	// wrap-around-unwrapped refinement with the §6 after-iterations
	// order, and the affine iteration form.
	cls       *iv.Classification
	unwrapped *iv.Classification
	after     int
	form      *iv.IterForm
	clsDone   bool
	formDone  bool
}

// String renders e.g. "a[i2] (write at b3)".
func (ac *Access) String() string {
	kind := "read"
	if ac.Write {
		kind = "write"
	}
	return fmt.Sprintf("%s[%s] (%s %s)", ac.Array, ac.Value.Args[0], kind, ac.Value)
}

// Dir is a set of iteration-order relations between source and sink.
type Dir uint8

// Direction bits.
const (
	DirLT Dir = 1 << iota // source iteration strictly before sink
	DirEQ                 // same iteration
	DirGT                 // source iteration after sink (only in unordered summaries)
)

// All is the uninformative direction.
const DirAll = DirLT | DirEQ | DirGT

// String renders the direction in the paper's notation.
func (d Dir) String() string {
	switch d {
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	case DirLT | DirEQ:
		return "<="
	case DirGT | DirEQ:
		return ">="
	case DirLT | DirGT:
		return "!="
	case DirAll:
		return "*"
	case 0:
		return "none"
	}
	return "?"
}

// Kind distinguishes dependence sorts.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write then read
	Anti               // read then write
	Output             // write then write
	Input              // read then read (reported only on request)
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Input:
		return "input"
	}
	return "?"
}

// Dependence records one dependence from Src to Dst (Src executes
// first).
type Dependence struct {
	Src, Dst *Access
	Kind     Kind
	// Loops is the common nest, outermost first; Dirs has one entry per
	// loop.
	Loops []*loops.Loop
	Dirs  []Dir
	// AfterIterations > 0 flags a wrap-around participant: the relation
	// holds only from that iteration on (§6).
	AfterIterations int
	// Modulus/Residue, when Modulus > 1, constrain the innermost-loop
	// distance: dst_iter - src_iter ≡ Residue (mod Modulus). Produced by
	// periodic families (§6, L22).
	Modulus, Residue int
	// Distance, when non-nil, is the exact constant iteration distance
	// (dst - src) per common loop — the distance vector the paper's
	// L23/L24 discussion works with. Only set when every loop's
	// distance is a single constant (strong-SIV shapes).
	Distance []int64
	// Equation is the printable dependence equation, e.g.
	// "1 + h = 2 + 2·h'".
	Equation string
	// Method names the decision procedure that admitted the dependence.
	Method string
}

// String renders one dependence line.
func (d *Dependence) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s dep: %s -> %s", d.Kind, d.Src, d.Dst)
	if len(d.Dirs) > 0 {
		parts := make([]string, len(d.Dirs))
		for i, dir := range d.Dirs {
			parts[i] = dir.String()
		}
		fmt.Fprintf(&sb, " directions (%s)", strings.Join(parts, ", "))
	}
	if d.Distance != nil {
		parts := make([]string, len(d.Distance))
		for i, v := range d.Distance {
			parts[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&sb, " distance (%s)", strings.Join(parts, ", "))
	}
	if d.AfterIterations > 0 {
		fmt.Fprintf(&sb, " [after %d iterations]", d.AfterIterations)
	}
	if d.Modulus > 1 {
		fmt.Fprintf(&sb, " [distance ≡ %d mod %d]", d.Residue, d.Modulus)
	}
	if d.Method != "" {
		fmt.Fprintf(&sb, " {%s}", d.Method)
	}
	return sb.String()
}

// Result is the dependence analysis of a program.
type Result struct {
	Analysis *iv.Analysis
	Accesses []*Access
	Deps     []*Dependence
	// Independent counts pairs proven dependence-free.
	Independent int
}

// Options configure the analysis.
type Options struct {
	// IncludeInput reports read-read dependences too.
	IncludeInput bool
	// MaxExact bounds the iteration-space size enumerated exactly.
	MaxExact int
	// Obs, when non-nil, records the "depend" phase span, per-test
	// counters (depend.test.<name>.<outcome>) and per-edge provenance
	// events. Nil disables telemetry at no cost.
	Obs *obs.Recorder
	// Limits bounds the tester's work: a step budget charged per pair
	// and per direction-vector test. Ceiling hits panic with a
	// *guard.LimitError, contained at the facade. The zero value is
	// unchecked.
	Limits guard.Limits
	// Scratch, when non-nil, lends the tester reusable working tables
	// for the duration of one Analyze call. Excluded from Fingerprint —
	// table reuse never changes results — and never retained by the
	// returned Result, so a cached Result cannot pin or share an arena.
	Scratch *scratch.Arena
	// Workers is the intra-run fan-out width for pair testing: when
	// above 1 and the pair count clears the work-size threshold, pairs
	// are tested concurrently and merged back in (a.Order, b.Order)
	// order, bit-identical to the sequential sweep. Excluded from
	// Fingerprint.
	Workers int
	// Metrics, when non-nil, receives the engine.par.* fan-out
	// counters. Nil-off; excluded from Fingerprint.
	Metrics *metrics.Registry
}

// Fingerprint identifies the option fields that change analysis
// results, for content-addressed caching. Obs and Limits are excluded
// — telemetry never changes results, and limits are fingerprinted by
// the engine itself.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("input:%t,maxexact:%d", o.IncludeInput, o.maxExact())
}

func (o Options) maxExact() int {
	if o.MaxExact > 0 {
		return o.MaxExact
	}
	return 1 << 16
}

// Analyze runs dependence testing over every array-reference pair.
func Analyze(a *iv.Analysis, opts Options) *Result {
	rec := opts.Obs
	span := rec.Phase("depend")
	defer span.End()

	r := &Result{Analysis: a}
	r.collectAccesses()
	if rec != nil {
		rec.Add("depend.accesses", int64(len(r.Accesses)))
	}

	byArray := map[string][]*Access{}
	for _, ac := range r.Accesses {
		byArray[ac.Array] = append(byArray[ac.Array], ac)
	}
	arrays := make([]string, 0, len(byArray))
	for name := range byArray {
		arrays = append(arrays, name)
	}
	sort.Strings(arrays)

	tester := &tester{a: a, opts: opts, budget: opts.Limits.Budget("depend")}
	if opts.Scratch != nil {
		tester.scr = scratch.Get[dependScratch](&opts.Scratch.Depend)
		tester.opts.Scratch = nil // the Result must never retain the arena
	} else {
		tester.scr = &dependScratch{}
	}
	if testParallel(r, tester, byArray, arrays) {
		return r
	}
	for _, name := range arrays {
		list := byArray[name]
		for i := 0; i < len(list); i++ {
			for j := i; j < len(list); j++ {
				if skipPair(list[i], list[j], i == j, opts) {
					continue
				}
				deps, independent := tester.testPair(list[i], list[j])
				r.Deps = append(r.Deps, deps...)
				if independent {
					r.Independent++
				}
			}
		}
	}
	return r
}

// skipPair is the pair-sweep admission rule shared by the sequential
// and parallel paths: a read is never paired with itself, and
// read-read pairs are tested only on request.
func skipPair(a, b *Access, same bool, opts Options) bool {
	if same && !a.Write {
		return true
	}
	return !a.Write && !b.Write && !opts.IncludeInput
}

func (r *Result) collectAccesses() {
	// Value IDs are assigned during lowering in source order, which is
	// exactly intra-iteration execution order — block IDs are not (an
	// else block is created after its join), and reverse postorder
	// interleaves sibling structures.
	for _, b := range r.Analysis.SSA.Func.Blocks {
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpLoadElem, ir.OpStoreElem:
				r.Accesses = append(r.Accesses, &Access{
					Value: v,
					Array: v.Var,
					Write: v.Op == ir.OpStoreElem,
					Loop:  r.Analysis.Forest.InnermostContaining(b),
					Order: v.ID,
				})
			}
		}
	}
	slices.SortFunc(r.Accesses, byOrder)
}

// Report renders all dependences in a stable order.
func (r *Result) Report() string {
	var sb strings.Builder
	for _, d := range r.Deps {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d dependences, %d pairs independent\n", len(r.Deps), r.Independent)
	return sb.String()
}

// byOrder sorts accesses by program position — the shared comparator
// for every deterministic access ordering (slices.SortFunc).
func byOrder(a, b *Access) int { return a.Order - b.Order }

// commonLoops returns the loops enclosing both accesses, outermost
// first. The shared loops are exactly the ancestors of the two nests'
// lowest common ancestor, found by walking the deeper chain up to equal
// depth and then both chains in lockstep — no allocation beyond the
// result.
func commonLoops(a, b *Access) []*loops.Loop {
	la, lb := a.Loop, b.Loop
	for la != nil && lb != nil && la != lb {
		switch {
		case la.Depth > lb.Depth:
			la = la.Parent
		case lb.Depth > la.Depth:
			lb = lb.Parent
		default:
			la, lb = la.Parent, lb.Parent
		}
	}
	if la == nil || lb == nil {
		return nil
	}
	n := 0
	for l := la; l != nil; l = l.Parent {
		n++
	}
	out := make([]*loops.Loop, n)
	for l := la; l != nil; l = l.Parent {
		n--
		out[n] = l
	}
	return out
}

// Stats summarizes a dependence analysis: counts per kind and per
// decision method, for reporting and regression tracking.
type Stats struct {
	ByKind   map[Kind]int
	ByMethod map[string]int
	Total    int
	// Exact counts dependences with a full distance vector.
	Exact int
}

// Stats computes the summary.
func (r *Result) Stats() Stats {
	s := Stats{ByKind: map[Kind]int{}, ByMethod: map[string]int{}}
	for _, d := range r.Deps {
		s.Total++
		s.ByKind[d.Kind]++
		s.ByMethod[d.Method]++
		if d.Distance != nil {
			s.Exact++
		}
	}
	return s
}
