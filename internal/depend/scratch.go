package depend

import (
	"beyondiv/internal/ir"
)

// dependScratch is the dependence tester's slot in the per-run scratch
// arena: the value-id-indexed symbol accumulator buildEquation uses to
// cancel matching symbolic terms. Entries are live only when their gen
// stamp matches, so starting a new equation is a counter bump instead
// of a table clear, and a recycled arena can never leak coefficients
// between pairs or runs.
type dependScratch struct {
	symCoeff []int64
	symGen   []uint32
	gen      uint32
	// symTouched collects the symbols seen by the current equation, in
	// first-touch order, so leftovers iterate deterministically.
	symTouched []*ir.Value
}

// beginEquation invalidates all symbol entries and readies the touched
// list for one buildEquation call.
func (s *dependScratch) beginEquation() {
	s.gen++
	s.symTouched = s.symTouched[:0]
}

// symAccum adds delta to v's accumulated coefficient, first-touch
// initializing the slot. The dense tables grow on demand so values
// minted after analysis (e.g. by transformations) stay in bounds.
func (s *dependScratch) symAccum(v *ir.Value) *int64 {
	if v.ID >= len(s.symGen) {
		n := v.ID + 1
		if n < 2*len(s.symGen) {
			n = 2 * len(s.symGen)
		}
		coeff := make([]int64, n)
		gen := make([]uint32, n)
		copy(coeff, s.symCoeff)
		copy(gen, s.symGen)
		s.symCoeff, s.symGen = coeff, gen
	}
	if s.symGen[v.ID] != s.gen {
		s.symGen[v.ID] = s.gen
		s.symCoeff[v.ID] = 0
		s.symTouched = append(s.symTouched, v)
	}
	return &s.symCoeff[v.ID]
}
