package depend

import (
	"fmt"

	"beyondiv/internal/loops"
	"beyondiv/internal/safemath"
)

// This file implements the transformation legality questions §6 says the
// dependence information is for ("This information is critical to many
// optimization algorithms"): loop parallelization, loop interchange, and
// the unimodular (skew + interchange) formulation the paper's closing
// remarks cite ([KMW67], [W0186], [WL91], [Ban91]).

// CarriedBy reports whether dependence d is carried by loop l: the
// direction entry for l admits < (or >) at the outermost non-= level.
func (d *Dependence) CarriedBy(l *loops.Loop) bool {
	for i, dl := range d.Loops {
		if dl == l {
			// Carried here only if every outer level admits =, and this
			// level admits an inequality.
			for j := 0; j < i; j++ {
				if d.Dirs[j]&DirEQ == 0 {
					return false // carried strictly further out
				}
			}
			return d.Dirs[i]&(DirLT|DirGT) != 0
		}
	}
	return false
}

// Parallelizable reports whether loop l's iterations can run
// concurrently: no flow/anti/output dependence is carried by l. The
// blocking dependences are returned for diagnostics.
func Parallelizable(r *Result, l *loops.Loop) (bool, []*Dependence) {
	var blocking []*Dependence
	for _, d := range r.Deps {
		if d.Kind == Input {
			continue
		}
		if d.CarriedBy(l) {
			blocking = append(blocking, d)
		}
	}
	return len(blocking) == 0, blocking
}

// InterchangeLegal reports whether the perfectly nested pair
// (outer, inner) may be interchanged: illegal exactly when some
// dependence has direction (<, >) — it would become (>, <), i.e. flow
// backwards — the situation §6.1 shows normalization manufactures for
// L23/L24.
func InterchangeLegal(r *Result, outer, inner *loops.Loop) (bool, []*Dependence) {
	var blocking []*Dependence
	for _, d := range r.Deps {
		if d.Kind == Input {
			continue
		}
		oi, ii := -1, -1
		for k, l := range d.Loops {
			if l == outer {
				oi = k
			}
			if l == inner {
				ii = k
			}
		}
		if oi < 0 || ii < 0 {
			continue
		}
		if d.Dirs[oi]&DirLT != 0 && d.Dirs[ii]&DirGT != 0 {
			blocking = append(blocking, d)
		}
	}
	return len(blocking) == 0, blocking
}

// Unimodular2 is a 2×2 integer matrix T acting on 2-deep iteration
// vectors; legality of the transformed nest requires every dependence
// distance vector δ to keep T·δ lexicographically positive ([WL91],
// [Ban91] as cited in §6.1).
type Unimodular2 [2][2]int64

// Interchange and Skew are the two generators used by the paper's
// discussion: loop interchange and inner-loop skewing by factor f.
var Interchange = Unimodular2{{0, 1}, {1, 0}}

// Skew returns the transformation adding f times the outer counter to
// the inner one (wavefront transformation, [W0186]).
func Skew(f int64) Unimodular2 {
	return Unimodular2{{1, 0}, {f, 1}}
}

// Mul composes transformations (t then u: u·t).
func (t Unimodular2) Mul(u Unimodular2) Unimodular2 {
	var out Unimodular2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = u[i][0]*t[0][j] + u[i][1]*t[1][j]
		}
	}
	return out
}

// Det returns the determinant; ±1 for a unimodular matrix.
func (t Unimodular2) Det() int64 { return t[0][0]*t[1][1] - t[0][1]*t[1][0] }

// Apply transforms a distance vector. ok is false when a product or sum
// overflows int64; legality judged from a wrapped vector would be
// meaningless, so callers must treat overflow as "cannot prove legal".
func (t Unimodular2) Apply(d [2]int64) (out [2]int64, ok bool) {
	for i := 0; i < 2; i++ {
		a, okA := safemath.Mul(t[i][0], d[0])
		b, okB := safemath.Mul(t[i][1], d[1])
		s, okS := safemath.Add(a, b)
		if !okA || !okB || !okS {
			return [2]int64{}, false
		}
		out[i] = s
	}
	return out, true
}

// String renders the matrix on one line.
func (t Unimodular2) String() string {
	return fmt.Sprintf("[[%d %d] [%d %d]]", t[0][0], t[0][1], t[1][0], t[1][1])
}

// lexPositive reports δ ≻ 0 (or δ = 0, which is loop-independent and
// always fine).
func lexPositive(d [2]int64) bool {
	if d[0] != 0 {
		return d[0] > 0
	}
	return d[1] >= 0
}

// DistanceVectors2 collects the exact 2-level distance vectors of the
// dependences spanning the (outer, inner) nest; ok is false when some
// dependence has no exact distance (legality must then be judged from
// directions, which Unimodular legality cannot do in general).
func DistanceVectors2(r *Result, outer, inner *loops.Loop) (out [][2]int64, ok bool) {
	for _, d := range r.Deps {
		if d.Kind == Input {
			continue
		}
		oi, ii := -1, -1
		for k, l := range d.Loops {
			if l == outer {
				oi = k
			}
			if l == inner {
				ii = k
			}
		}
		if oi < 0 || ii < 0 {
			continue
		}
		if d.Distance == nil {
			return nil, false
		}
		out = append(out, [2]int64{d.Distance[oi], d.Distance[ii]})
	}
	return out, true
}

// UnimodularLegal reports whether T keeps every distance vector
// lexicographically nonnegative. A transformed vector that overflows
// int64 is conservatively illegal.
func UnimodularLegal(t Unimodular2, dists [][2]int64) bool {
	for _, d := range dists {
		td, ok := t.Apply(d)
		if !ok || !lexPositive(td) {
			return false
		}
	}
	return true
}

// FindSkewedInterchange searches for the smallest skew factor f ≥ 0
// such that interchange-after-skew is legal — the "loop skewing and
// loop interchanging as a single transformation" of §6.1. Returns the
// composite matrix. maxF bounds the search.
func FindSkewedInterchange(dists [][2]int64, maxF int64) (Unimodular2, bool) {
	for f := int64(0); f <= maxF; f++ {
		t := Skew(f).Mul(Interchange)
		if UnimodularLegal(t, dists) {
			return t, true
		}
	}
	return Unimodular2{}, false
}
