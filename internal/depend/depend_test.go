package depend

import (
	"strings"
	"testing"

	"beyondiv/internal/iv"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(a, Options{})
}

// findDep returns dependences matching kind between the named array's
// write/read pair.
func deps(r *Result, kind Kind) []*Dependence {
	var out []*Dependence
	for _, d := range r.Deps {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// TestL21Equation reproduces §6's first example: A(i) = A(j-1) with
// i = (L21, 1, 1) and j-1 = (L21, 2, 2) gives the dependence equation
// 1 + h = 2 + 2h', solvable with the write strictly after the read.
func TestL21Equation(t *testing.T) {
	r := analyze(t, `
i = 0
j = 3
L21: loop {
    i = i + 1
    a[i] = a[j - 1]
    j = j + 2
    if i > 100 { exit }
}
`)
	// Solutions h = 2h'+1 > h': the read at h' happens first, the write
	// later: an anti-dependence read->write with direction (<).
	anti := deps(r, Anti)
	if len(anti) != 1 {
		t.Fatalf("anti deps = %v\n%s", anti, r.Report())
	}
	if anti[0].Dirs[0] != DirLT {
		t.Errorf("anti direction = %s, want <", anti[0].Dirs[0])
	}
	if !strings.Contains(anti[0].Equation, "=") {
		t.Errorf("equation missing: %q", anti[0].Equation)
	}
	// No flow dependence: the write index (odd: 1+h... h+1) and read
	// index 2h'+2 (even vs odd parity: h+1 = 2h'+2 has solutions when
	// h odd). Flow would need write before read: h < h' with
	// h = 2h'+1 — impossible.
	if fl := deps(r, Flow); len(fl) != 0 {
		t.Errorf("unexpected flow deps: %v", fl)
	}
}

// TestGCDIndependence: a[2i] vs a[2i+1] never collide (parity).
func TestGCDIndependence(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to n {
    a[2 * i] = a[2 * i + 1]
}
`)
	if len(r.Deps) != 0 {
		t.Errorf("expected independence, got:\n%s", r.Report())
	}
	if r.Independent == 0 {
		t.Error("independent pair not counted")
	}
}

// TestStrongSIVDistance: a[i] = a[i-1] carries distance 1, direction <.
func TestStrongSIVDistance(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 50 {
    a[i] = a[i - 1] + 1
}
`)
	fl := deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	if fl[0].Dirs[0] != DirLT {
		t.Errorf("direction = %s, want <", fl[0].Dirs[0])
	}
	// And no anti dependence the other way (a[i-1] reads old values
	// only).
	for _, d := range deps(r, Anti) {
		if d.Dirs[0]&DirEQ != 0 || d.Dirs[0]&DirLT != 0 {
			t.Errorf("unexpected anti dep %s", d)
		}
	}
}

// TestSameIndexLoopIndependent: a[i] written then read in one iteration.
func TestSameIndexLoopIndependent(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 50 {
    a[i] = 1
    b[i] = a[i]
}
`)
	fl := deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	if fl[0].Dirs[0] != DirEQ {
		t.Errorf("direction = %s, want =", fl[0].Dirs[0])
	}
}

// TestL23Normalization reproduces §6.1: the paper's point is that this
// representation implicitly normalizes all loops, so the triangular
// A(i,j) = A(i-1,j) (distance (1,0) in loop-variable space, (1,-1)
// normalized) and its hand-normalized variant give *identical*
// dependence results here — and both must include the true direction
// pair (<, >) in normalized iteration space.
func TestL23Normalization(t *testing.T) {
	plain := `
L23: for i = 1 to 9 {
    L24: for j = i + 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`
	normalized := `
L23: for i = 1 to 9 {
    L24: for j = 1 to 9 - i {
        a[i * 1000 + j + i] = a[i * 1000 + j + i - 1000]
    }
}
`
	var results []*Dependence
	for _, src := range []string{plain, normalized} {
		r := analyze(t, src)
		fl := deps(r, Flow)
		if len(fl) != 1 {
			t.Fatalf("flow deps for\n%s\n%s", src, r.Report())
		}
		d := fl[0]
		if len(d.Dirs) != 2 || d.Dirs[0]&DirLT == 0 || d.Dirs[1]&DirGT == 0 {
			t.Errorf("directions = %v, want to include (<, >) in\n%s", d.Dirs, src)
		}
		results = append(results, d)
	}
	// Identical outcome for both spellings.
	if results[0].Dirs[0] != results[1].Dirs[0] || results[0].Dirs[1] != results[1].Dirs[1] {
		t.Errorf("normalization changed the result: %v vs %v", results[0].Dirs, results[1].Dirs)
	}
}

// TestRectangularDistanceVector: the rectangular version of L23 is
// decided exactly: flow directions (<, =), nothing else.
func TestRectangularDistanceVector(t *testing.T) {
	r := analyze(t, `
L23: for i = 1 to 9 {
    L24: for j = 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`)
	fl := deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	d := fl[0]
	if len(d.Dirs) != 2 || d.Dirs[0] != DirLT || d.Dirs[1] != DirEQ {
		t.Errorf("directions = %v, want (<, =)", d.Dirs)
	}
	if d.Method != "delta" {
		t.Errorf("method = %s, want delta (distance-space exact)", d.Method)
	}
}

// TestL22Periodic reproduces §6's periodic example: A(2j) = A(2k) with
// (j,k) a periodic pair with distinct initial values: the = direction
// on the family translates to distance ≡ 1 (mod 2) on iterations — in
// particular no loop-independent dependence.
func TestL22Periodic(t *testing.T) {
	r := analyze(t, `
j = 1
k = 2
L22: for it = 1 to n {
    a[2 * j] = a[2 * k]
    temp = j
    j = k
    k = temp
}
`)
	if len(r.Deps) == 0 {
		t.Fatalf("expected periodic dependences:\n%s", r.Report())
	}
	crossPairs := 0
	for _, d := range r.Deps {
		if d.Method != "periodic" {
			t.Errorf("method = %s, want periodic: %s", d.Method, d)
		}
		if d.Modulus != 2 {
			t.Errorf("modulus = %d, want 2: %s", d.Modulus, d)
		}
		if d.Src == d.Dst {
			// Self output dep: same phase, distance ≡ 0 (mod 2), no =.
			if d.Residue != 0 || d.Dirs[0]&DirEQ != 0 {
				t.Errorf("self dep should be residue 0 without =: %s", d)
			}
			continue
		}
		crossPairs++
		if d.Residue != 1 {
			t.Errorf("residue = %d, want 1: %s", d.Residue, d)
		}
		if d.Dirs[0]&DirEQ != 0 {
			t.Errorf("loop-independent direction must be excluded: %s", d)
		}
	}
	if crossPairs == 0 {
		t.Errorf("no write/read periodic pair found:\n%s", r.Report())
	}
}

// TestPeriodicSamePhase: reading and writing through the same periodic
// variable collides every period.
func TestPeriodicSamePhase(t *testing.T) {
	r := analyze(t, `
j = 1
k = 2
L22: for it = 1 to n {
    a[j] = a[j] + 1
    temp = j
    j = k
    k = temp
}
`)
	found := false
	for _, d := range r.Deps {
		if d.Method == "periodic" && d.Modulus == 2 && d.Residue == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected residue-0 periodic dependence:\n%s", r.Report())
	}
}

// TestFigure10Directions reproduces §5.4/§6: in the pack loop, the
// strictly monotonic k3 gives array B direction (=); the merely
// monotonic k2/k4 pair gives array F flow (≤) and anti (<).
func TestFigure10Directions(t *testing.T) {
	r := analyze(t, `
k = 0
L15: for i = 1 to n {
    f[k] = a[i]
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
        e[i] = b[k]
    }
    g[i] = f[k]
}
`)
	// Array B: write b[k3], read b[k3]: strict member, direction (=).
	var bFlow *Dependence
	for _, d := range deps(r, Flow) {
		if d.Src.Array == "b" {
			bFlow = d
		}
	}
	if bFlow == nil {
		t.Fatalf("no flow dep on b:\n%s", r.Report())
	}
	if bFlow.Dirs[0] != DirEQ || bFlow.Method != "monotonic-strict" {
		t.Errorf("b flow = %s, want (=) via monotonic-strict", bFlow)
	}
	// Array F: write f[k2] then read f[k4] (different members,
	// non-strict): flow (≤), anti (<).
	var fFlow, fAnti *Dependence
	for _, d := range r.Deps {
		if d.Src.Array != "f" {
			continue
		}
		switch d.Kind {
		case Flow:
			fFlow = d
		case Anti:
			fAnti = d
		}
	}
	if fFlow == nil || fFlow.Dirs[0] != (DirLT|DirEQ) {
		t.Errorf("f flow = %v, want (<=)", fFlow)
	}
	if fAnti == nil || fAnti.Dirs[0] != DirLT {
		t.Errorf("f anti = %v, want (<)", fAnti)
	}
}

// TestWrapAroundFlag: a dependence through a wrap-around subscript is
// marked as holding only after the first iteration (§6).
func TestWrapAroundFlag(t *testing.T) {
	r := analyze(t, `
iml = n
L9: for i = 1 to n {
    a[i] = a[iml] + 1
    iml = i
}
`)
	found := false
	for _, d := range r.Deps {
		if d.AfterIterations == 1 {
			found = true
			// After warm-up iml = i-1: flow a[i] -> a[iml] distance 1.
			if d.Kind == Flow && d.Dirs[0]&DirLT == 0 {
				t.Errorf("wrap-around flow should carry <: %s", d)
			}
		}
	}
	if !found {
		t.Errorf("no dependence flagged after-1-iteration:\n%s", r.Report())
	}
}

// TestDistinctArraysNeverTested: accesses to different arrays cannot
// conflict.
func TestDistinctArraysNeverTested(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to n {
    a[i] = b[i]
}
`)
	if len(r.Deps) != 0 {
		t.Errorf("cross-array dependences reported:\n%s", r.Report())
	}
}

// TestOutputSelf: a[5] written each iteration depends on itself with
// direction (<).
func TestOutputSelf(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 10 {
    a[5] = i
}
`)
	out := deps(r, Output)
	if len(out) != 1 {
		t.Fatalf("output deps:\n%s", r.Report())
	}
	if out[0].Dirs[0] != DirLT {
		t.Errorf("direction = %s, want <", out[0].Dirs[0])
	}
}

// TestUnknownSubscriptAssumed: an unanalyzable subscript (array value)
// falls back to assumed dependence.
func TestUnknownSubscriptAssumed(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to n {
    a[b[i]] = a[i]
}
`)
	found := false
	for _, d := range r.Deps {
		if d.Method == "assumed" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected assumed dependences:\n%s", r.Report())
	}
}

// TestZeroTripLoopIndependent: a loop that never runs carries nothing.
func TestZeroTripLoopIndependent(t *testing.T) {
	r := analyze(t, `
L1: for i = 5 to 1 {
    a[i] = a[i - 1]
}
`)
	if len(r.Deps) != 0 {
		t.Errorf("zero-trip loop produced deps:\n%s", r.Report())
	}
}

// TestSymbolicBoundsConservative: unknown trip counts still produce
// correct (conservative) answers.
func TestSymbolicBoundsConservative(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to n {
    a[i] = a[i + 1]
}
`)
	anti := deps(r, Anti)
	if len(anti) != 1 || anti[0].Dirs[0] != DirLT {
		t.Errorf("a[i] vs a[i+1] should be an anti dep (<):\n%s", r.Report())
	}
}

// TestCrossLoopPair: accesses in sibling loops share no common loop but
// may still conflict (loop-independent dependence).
func TestCrossLoopPair(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 10 {
    a[i] = i
}
L2: for j = 5 to 15 {
    b[j] = a[j]
}
`)
	fl := deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	if len(fl[0].Loops) != 0 {
		t.Errorf("no common loops expected, got %v", fl[0].Loops)
	}
	// Disjoint ranges are independent.
	r = analyze(t, `
L1: for i = 1 to 10 {
    a[i] = i
}
L2: for j = 11 to 15 {
    b[j] = a[j]
}
`)
	if len(r.Deps) != 0 {
		t.Errorf("disjoint ranges should be independent:\n%s", r.Report())
	}
}

// TestDistanceVectors checks exact constant distances on strong-SIV and
// rectangular 2-D shapes (the paper's (1, 0) distance-vector example).
func TestDistanceVectors(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 40 {
    a[i] = a[i - 3] + 1
}
`)
	fl := deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	if fl[0].Distance == nil || fl[0].Distance[0] != 3 {
		t.Errorf("distance = %v, want (3)", fl[0].Distance)
	}

	// The 2-D rectangular version of L23: distance (1, 0).
	r = analyze(t, `
L23: for i = 1 to 9 {
    L24: for j = 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`)
	fl = deps(r, Flow)
	if len(fl) != 1 {
		t.Fatalf("flow deps:\n%s", r.Report())
	}
	d := fl[0].Distance
	if d == nil || d[0] != 1 || d[1] != 0 {
		t.Errorf("distance = %v, want (1, 0)", d)
	}
	if !strings.Contains(fl[0].String(), "distance (1, 0)") {
		t.Errorf("rendering: %s", fl[0])
	}

	// Varying distances: none reported.
	r = analyze(t, `
L1: for i = 1 to 40 {
    a[i] = a[i / 2]
}
`)
	for _, dp := range r.Deps {
		if dp.Distance != nil {
			t.Errorf("unexpected distance on varying-stride dep: %s", dp)
		}
	}
}

// TestStrictAtSite reproduces §5.4's refinement on Figure 10's array C:
// the write c[k2] sits inside the conditional and is post-dominated by
// the strict increment k3 = k2 + 1, so even though k2 is only
// non-strictly monotonic, the site never writes the same cell twice —
// no loop-carried output dependence.
func TestStrictAtSite(t *testing.T) {
	r := analyze(t, `
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        c[k] = d[i]
        k = k + 1
        b[k] = a[i]
    }
    g[i] = f[k]
}
`)
	for _, d := range r.Deps {
		if d.Src.Array == "c" {
			t.Errorf("c[k2] should carry no dependence (§5.4): %s", d)
		}
	}
	// Contrast: the read f[k] outside the conditional is NOT
	// post-dominated by the increment, so f keeps its dependences...
	// (f is read-only here, so check the weaker fact that k2 used
	// there is still classified non-strict).
	a := r.Analysis
	l := a.LoopByLabel("L15")
	k2 := a.ValueByName("k2")
	if c := a.ClassOf(l, k2); c.Kind != iv.Monotonic || c.Strict {
		t.Errorf("k2 = %s, want non-strict monotonic", c)
	}
}

// TestStrictAtSiteNegative: a site *not* post-dominated by the strict
// increment keeps its output dependence.
func TestStrictAtSiteNegative(t *testing.T) {
	r := analyze(t, `
k = 0
L15: for i = 1 to n {
    c[k] = a[i]
    if a[i] > 0 {
        k = k + 1
    }
}
`)
	found := false
	for _, d := range r.Deps {
		if d.Src.Array == "c" && d.Kind == Output {
			found = true
		}
	}
	if !found {
		t.Errorf("c[k2] outside the conditional must keep its output dep:\n%s", r.Report())
	}
}

// TestDOT sanity-checks the Graphviz rendering.
func TestDOT(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 9 {
    a[i] = a[i - 2]
}
`)
	dot := r.DOT()
	for _, want := range []string{
		"digraph dependences", "a[i2]", "write in L1", "read in L1",
		"flow (<) d=(2)", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestPolynomialSubscripts: quadratic subscripts decided exactly by
// closed-form evaluation (§6's reference to Banerjee's treatment).
func TestPolynomialSubscripts(t *testing.T) {
	// j runs 1, 3, 6, 10, ... (triangular numbers): all distinct, so
	// the only dependence on a[j] is the loop-independent write/read.
	r := analyze(t, `
j = 0
L1: for i = 1 to 12 {
    j = j + i
    a[j] = a[j] + 1
}
`)
	for _, d := range r.Deps {
		if d.Method != "polynomial-exact" {
			t.Errorf("method = %s, want polynomial-exact: %s", d.Method, d)
		}
		if d.Kind == Output && d.Src == d.Dst {
			t.Errorf("triangular subscripts never repeat; no self output dep: %s", d)
		}
		for _, dir := range d.Dirs {
			if dir != DirEQ {
				t.Errorf("only the same-iteration dependence should exist: %s", d)
			}
		}
	}
	if len(r.Deps) == 0 {
		t.Errorf("the same-iteration a[j] write/read must be reported:\n%s", r.Report())
	}

	// Colliding polynomials: a[i*i] vs a[(i-2)*(i-2)+4]... simpler:
	// write a[j] with j quadratic, read a[6]: hits once (j=6 at h=2),
	// flow to the fixed read when the write precedes it.
	r = analyze(t, `
j = 0
L1: for i = 1 to 12 {
    j = j + i
    a[j] = i
    b[i] = a[6]
}
`)
	fl := deps(r, Flow)
	found := false
	for _, d := range fl {
		if d.Method == "polynomial-exact" && d.Dirs[0]&(DirEQ|DirLT) != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("quadratic write vs constant read must collide:\n%s", r.Report())
	}

	// Geometric subscripts: powers of two never collide with odd
	// constants.
	r = analyze(t, `
x = 1
L1: for i = 1 to 10 {
    x = x * 2
    a[x] = a[7]
}
`)
	for _, d := range r.Deps {
		t.Errorf("2^h never equals 7: %s", d)
	}
}

// TestIncludeInput: read-read pairs are reported only on request.
func TestIncludeInput(t *testing.T) {
	src := `
L1: for i = 1 to 10 {
    x = a[i] + a[i - 1]
    b[x] = x
}
`
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	without := Analyze(a, Options{})
	for _, d := range without.Deps {
		if d.Kind == Input {
			t.Errorf("input dep reported without opt-in: %s", d)
		}
	}
	with := Analyze(a, Options{IncludeInput: true})
	found := false
	for _, d := range with.Deps {
		if d.Kind == Input && d.Src.Array == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("input dependence on a missing:\n%s", with.Report())
	}
}

// TestMaxExactOption: shrinking the exact budget falls back to the
// conservative tests without losing soundness.
func TestMaxExactOption(t *testing.T) {
	src := `
L1: for i = 1 to 50 {
    a[2 * i] = a[2 * i + 1]
}
`
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget: the GCD test still proves independence.
	r := Analyze(a, Options{MaxExact: 2})
	if len(r.Deps) != 0 {
		t.Errorf("GCD should prove independence regardless of budget:\n%s", r.Report())
	}
}

// TestCompositePeriodicAffine: the relaxation pattern plane[cur*W + i]
// vs plane[old*W + i] with flipping selectors. Within a sweep the two
// planes never alias (no (=, *) flow/anti); across sweeps the writes
// land where the reads of the next sweep look.
func TestCompositePeriodicAffine(t *testing.T) {
	r := analyze(t, `
cur = 1
old = 2
L1: for sweep = 1 to 10 {
    L2: for i = 1 to 48 {
        plane[cur * 64 + i] = plane[old * 64 + i] + 1
    }
    t = cur
    cur = old
    old = t
}
`)
	for _, d := range r.Deps {
		if d.Src.Array != "plane" {
			continue
		}
		if d.Method != "periodic+affine" {
			t.Errorf("method = %s, want periodic+affine: %s", d.Method, d)
		}
		if d.Kind == Flow || d.Kind == Anti {
			if d.Dirs[0]&DirEQ != 0 {
				t.Errorf("same-sweep conflict should be excluded: %s", d)
			}
		}
	}
	fl := deps(r, Flow)
	if len(fl) == 0 {
		t.Fatalf("cross-sweep flow must exist:\n%s", r.Report())
	}
}

// TestCompositeDisjointPlanes: when the planes cannot overlap at all
// (stride exceeds the extent and the selectors never meet), the pair is
// independent.
func TestCompositeDisjointPlanes(t *testing.T) {
	// Selectors 1/2 vs 3/4: the rings share no values and the affine
	// parts cannot bridge a 64-cell gap with only 8 cells of play.
	r := analyze(t, `
cur = 1
old = 3
L1: for sweep = 1 to 10 {
    L2: for i = 1 to 8 {
        plane[cur * 64 + i] = plane[old * 64 + i] + 1
    }
    cur = 3 - cur
    old = 7 - old
}
`)
	for _, d := range r.Deps {
		if d.Src.Array != "plane" {
			continue
		}
		// The write (selector 1/2) revisits its own cells two sweeps
		// later — a real output dependence — but it never meets the
		// read's planes 3/4.
		if d.Kind == Flow || d.Kind == Anti {
			t.Errorf("planes 1/2 and 3/4 cannot alias: %s", d)
		}
	}
}

// TestElseJoinOrdering: an else-branch store and a post-if load execute
// in that source order within one iteration, even though the lowered
// else *block* is numbered after the join block. The loop-independent
// dependence must be a flow (store first), not an anti.
func TestElseJoinOrdering(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 20 {
    if a[i] > 0 {
        c[i] = 1
    } else {
        d[i] = i + i
    }
    e[i] = d[i]
}
`)
	found := false
	for _, dp := range r.Deps {
		if dp.Src.Array != "d" && dp.Dst.Array != "d" {
			continue
		}
		if dp.Kind == Flow && dp.Dirs[0]&DirEQ != 0 && dp.Src.Write {
			found = true
		}
		if dp.Kind == Anti && dp.Dirs[0] == DirEQ {
			t.Errorf("misordered same-iteration pair: %s", dp)
		}
	}
	if !found {
		t.Errorf("expected a same-iteration flow dep on d:\n%s", r.Report())
	}
}

func TestStats(t *testing.T) {
	r := analyze(t, `
L1: for i = 1 to 30 {
    a[i] = a[i - 1]
    b[i] = b[i]
}
`)
	s := r.Stats()
	if s.Total != len(r.Deps) || s.ByKind[Flow] == 0 {
		t.Errorf("stats = %+v\n%s", s, r.Report())
	}
	if s.Exact == 0 {
		t.Error("strong-SIV pairs should have exact distances")
	}
}
