package depend

import (
	"fmt"
	"strings"
	"testing"

	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/progen"
)

// The dependence oracle executes the program, records every array
// access with its cell and iteration vector, and checks that each
// observed conflict (two accesses to one cell, at least one write) is
// covered by a reported dependence whose direction vector, modular
// constraint, and wrap-around flag admit the observed pair. A conflict
// with no covering dependence is a soundness bug.

type event struct {
	access *Access
	index  int64
	iters  map[*loops.Loop]int64
	seq    int
}

func runDepOracle(t *testing.T, src string, params map[string]int64) {
	t.Helper()
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	r := Analyze(a, Options{})

	byValue := map[*ir.Value]*Access{}
	for _, ac := range r.Accesses {
		byValue[ac.Value] = ac
	}

	iter := map[*loops.Loop]int64{}
	curVals := map[*ir.Value]int64{}
	var events []event
	seq := 0

	hooks := interp.Hooks{
		OnBlock: func(b *ir.Block) {
			for _, l := range a.Forest.Loops {
				if l.Header == b {
					iter[l]++
				}
				if l.Preheader() == b {
					iter[l] = -1
				}
			}
		},
		OnEval: func(v *ir.Value, val int64) {
			curVals[v] = val
			ac, ok := byValue[v]
			if !ok {
				return
			}
			snap := map[*loops.Loop]int64{}
			for l := ac.Loop; l != nil; l = l.Parent {
				snap[l] = iter[l]
			}
			seq++
			events = append(events, event{
				access: ac,
				index:  curVals[v.Args[0]],
				iters:  snap,
				seq:    seq,
			})
		},
	}
	if _, err := interp.RunSSAHooked(a.SSA, interp.Config{Params: params, MaxSteps: 200_000}, hooks); err != nil {
		t.Fatalf("run: %v", err)
	}

	checkCoverage(t, src, a, r, events)
}

var depOracleParams = map[string]int64{"n": 9, "m": 25, "c": 2, "k": 3}

// TestDepOracleCurated covers the §6 examples and assorted access
// patterns.
func TestDepOracleCurated(t *testing.T) {
	corpus := []string{
		// L21.
		"i = 0\nj = 3\nL21: loop { i = i + 1\na[i] = a[j - 1]\nj = j + 2\nif i > 40 { exit } }",
		// L22 periodic.
		"j = 1\nk = 2\nL22: for it = 1 to n { a[2 * j] = a[2 * k]\ntemp = j\nj = k\nk = temp }",
		// Rotation of three.
		"j = 1\nk = 2\nl = 3\nL13: for it = 1 to n { a[j] = a[k] + a[l]\nt = j\nj = k\nk = l\nl = t }",
		// Pack loop (Figure 10).
		"k = 0\nL15: for i = 1 to n { f[k] = a[i]\nif a[i] > 0 { k = k + 1\nb[k] = a[i]\ne[i] = b[k] }\ng[i] = f[k] }",
		// Wrap-around (L9).
		"iml = n\nL9: for i = 1 to n { a[i] = a[iml] + 1\niml = i }",
		// Classic affine shapes.
		"L1: for i = 1 to 30 { a[i] = a[i - 1] + 1 }",
		"L1: for i = 1 to 30 { a[i] = a[i] + 1 }",
		"L1: for i = 1 to 30 { a[2 * i] = a[2 * i + 1] }",
		"L1: for i = 1 to 30 { a[31 - i] = a[i] }",
		"L1: for i = 1 to 10 { a[5] = a[5] + i }",
		// Nests.
		"L23: for i = 1 to 9 { L24: for j = 1 to 9 { a[i * 100 + j] = a[i * 100 + j - 100] } }",
		"L23: for i = 1 to 9 { L24: for j = i + 1 to 9 { a[i * 100 + j] = a[i * 100 + j - 100] } }",
		// Triangular with quadratic subscripts (falls back to assumed).
		"s = 0\nL1: for i = 1 to 9 { L2: for j = 1 to i { s = s + 1\na[s] = a[s - 1] } }",
		// Cross-loop.
		"L1: for i = 1 to 10 { a[i] = i }\nL2: for j = 5 to 15 { b[j] = a[j] }",
		// Symbolic bounds.
		"L1: for i = 1 to n { a[i] = a[i + 1] }",
		"L1: for i = 1 to n { a[i] = a[i + n] }",
		// Boundary iterations: the increment above a mid-loop exit test
		// runs count+1 times, and the only conflicts sit at that final
		// pass (regression tests for the per-access iteration bounds).
		"i = 0\nL1: loop { i = i + 1\na[i] = a[40] + 1\nif i > 39 { exit } }",
		"i = 0\nL1: loop { i = i + 1\na[40] = a[i]\nif i > 39 { exit } }",
		"i = 0\nL1: loop { i = i + 1\nif i > 20 { exit }\na[i] = a[21] }",
		// Multi-exit loops bounded only by a §5.2 maximum trip count.
		"i = 0\nL1: loop { i = i + 1\na[i] = a[i + 30]\nif a[i] > 2 { exit }\nif i > 25 { exit } }",
		// Composite periodic+affine subscripts (plane selectors).
		"cur = 1\nold = 2\nL1: for sweep = 1 to 6 { L2: for i = 1 to 10 { plane[cur * 16 + i] = plane[old * 16 + i] + 1 }\nt = cur\ncur = old\nold = t }",
		"cur = 1\nold = 2\nL1: for sweep = 1 to 6 { L2: for i = 1 to 10 { plane[cur * 16 + i] = plane[old * 16 + i + 1] + 1 }\ncur = 3 - cur\nold = 3 - old }",
		// Polynomial and geometric subscripts (closed-form evaluation).
		"j = 0\nL1: for i = 1 to 12 { j = j + i\na[j] = a[j] + 1 }",
		"j = 0\nL1: for i = 1 to 12 { j = j + i\na[j] = i\nb[i] = a[6] }",
		"x = 1\nL1: for i = 1 to 10 { x = x * 2\na[x] = a[8] + 1 }",
		"j = 0\nL1: for i = 1 to 10 { j = j + i\na[j] = a[j - 1] }",
	}
	for _, src := range corpus {
		runDepOracle(t, src, depOracleParams)
	}
}

// TestDepOracleGrid sweeps stride/offset combinations through the exact
// and GCD paths.
func TestDepOracleGrid(t *testing.T) {
	for _, sa := range []int{1, 2, 3} {
		for _, sb := range []int{1, 2, 3} {
			for _, off := range []int{-3, -1, 0, 1, 2, 5} {
				src := fmt.Sprintf(
					"L1: for i = 1 to 12 { a[%d * i] = a[%d * i + %d] }", sa, sb, off)
				runDepOracle(t, src, depOracleParams)
			}
		}
	}
}

// TestDepOracleTwoLoops sweeps 2-D shapes.
func TestDepOracleTwoLoops(t *testing.T) {
	shapes := []string{
		"L1: for i = 1 to 6 { L2: for j = 1 to 6 { a[%d * i + j] = a[%d * i + j + %d] } }",
	}
	for _, shape := range shapes {
		for _, ca := range []int{6, 7} {
			for _, off := range []int{-7, -1, 0, 1, 6} {
				src := fmt.Sprintf(shape, ca, ca, off)
				runDepOracle(t, src, depOracleParams)
			}
		}
	}
}

// TestQuickDepOracle runs the coverage oracle over randomly generated
// programs: every observed memory conflict in any generated loop nest
// must be admitted by a reported dependence.
func TestQuickDepOracle(t *testing.T) {
	gen := progen.New()
	params := map[string]int64{"n": 7, "m": 11, "x": 2, "y": -1, "i": 1, "j": 2, "k": 3, "l": 4, "t": 5}
	count := 0
	for seed := int64(0); count < 250 && seed < 4000; seed++ {
		src := gen.Program(seed)
		if !strings.Contains(src, "[") {
			continue // no array accesses: nothing to check
		}
		count++
		runDepOracleLenient(t, src, params)
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
	}
	if count < 100 {
		t.Fatalf("only %d programs had arrays", count)
	}
}

// runDepOracleLenient is runDepOracle tolerating interpreter step
// limits (generated programs may spin).
func runDepOracleLenient(t *testing.T, src string, params map[string]int64) {
	t.Helper()
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	r := Analyze(a, Options{})

	byValue := map[*ir.Value]*Access{}
	for _, ac := range r.Accesses {
		byValue[ac.Value] = ac
	}
	iter := map[*loops.Loop]int64{}
	curVals := map[*ir.Value]int64{}
	var events []event
	overflow := false

	hooks := interp.Hooks{
		OnBlock: func(b *ir.Block) {
			for _, l := range a.Forest.Loops {
				if l.Header == b {
					iter[l]++
				}
				if l.Preheader() == b {
					iter[l] = -1
				}
			}
		},
		OnEval: func(v *ir.Value, val int64) {
			curVals[v] = val
			ac, ok := byValue[v]
			if !ok || overflow {
				return
			}
			if len(events) > 4000 {
				overflow = true
				return
			}
			snap := map[*loops.Loop]int64{}
			for l := ac.Loop; l != nil; l = l.Parent {
				snap[l] = iter[l]
			}
			events = append(events, event{access: ac, index: curVals[v.Args[0]], iters: snap})
		},
	}
	if _, err := interp.RunSSAHooked(a.SSA, interp.Config{Params: params, MaxSteps: 60_000}, hooks); err != nil {
		return // step limit: skip
	}
	if overflow {
		return
	}
	checkCoverage(t, src, a, r, events)
}

// checkCoverage is the shared coverage check over recorded events.
func checkCoverage(t *testing.T, src string, a *iv.Analysis, r *Result, events []event) {
	t.Helper()
	wrapOrder := func(ac *Access) int {
		if ac.Loop == nil {
			return 0
		}
		cls := a.ClassOf(ac.Loop, ac.Value.Args[0])
		if cls.Kind == iv.WrapAround {
			return cls.Order
		}
		return 0
	}
	covered := func(e1, e2 event) bool {
		for _, d := range r.Deps {
			if d.Src != e1.access || d.Dst != e2.access {
				continue
			}
			ok := true
			for i, l := range d.Loops {
				h1, ok1 := e1.iters[l]
				h2, ok2 := e2.iters[l]
				if !ok1 || !ok2 {
					ok = false
					break
				}
				var rel Dir
				switch {
				case h1 < h2:
					rel = DirLT
				case h1 == h2:
					rel = DirEQ
				default:
					rel = DirGT
				}
				if d.Dirs[i]&rel == 0 {
					ok = false
					break
				}
				if d.Modulus > 1 && i == len(d.Loops)-1 {
					if int((h2-h1)%int64(d.Modulus)+int64(d.Modulus))%d.Modulus != d.Residue {
						ok = false
						break
					}
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	cells := map[string][]event{}
	for _, e := range events {
		key := fmt.Sprintf("%s@%d", e.access.Array, e.index)
		cells[key] = append(cells[key], e)
	}
	misses := 0
	for key, evs := range cells {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				e1, e2 := evs[i], evs[j]
				if !e1.access.Write && !e2.access.Write {
					continue
				}
				tol := false
				for _, e := range []event{e1, e2} {
					if o := wrapOrder(e.access); o > 0 && e.access.Loop != nil && e.iters[e.access.Loop] < int64(o) {
						tol = true
					}
				}
				if tol {
					continue
				}
				if !covered(e1, e2) {
					misses++
					if misses <= 3 {
						t.Errorf("uncovered conflict on %s: %s (iters %v) then %s (iters %v)\nprogram:\n%s\ndeps:\n%s",
							key, e1.access, e1.iters, e2.access, e2.iters, src, r.Report())
					}
				}
			}
		}
	}
}

// TestQuickDepOracleWorkloads stresses the decision paths with
// generated IV-shaped subscripts: affine strides, wrap-arounds,
// periodic selectors, monotonic packs, polynomial accumulators.
func TestQuickDepOracleWorkloads(t *testing.T) {
	params := map[string]int64{"n": 7}
	for seed := int64(0); seed < 200; seed++ {
		src := progen.DepWorkload(seed)
		runDepOracleLenient(t, src, params)
		if t.Failed() {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

// TestDepOracleBranches targets intra-iteration ordering across
// branches and joins (regression for the Access.Order fix).
func TestDepOracleBranches(t *testing.T) {
	corpus := []string{
		"L1: for i = 1 to 20 { if a[i] > 0 { c[i] = 1 } else { d[i] = i }\ne[i] = d[i] }",
		"L1: for i = 1 to 20 { if a[i] > 0 { d[i] = 1 } else { d[i] = 2 }\ne[i] = d[i] }",
		"L1: for i = 1 to 20 { x = d[i]\nif a[i] > 0 { d[i] = x + 1 } else { d[i + 1] = x } }",
		"L1: for i = 1 to 12 { if a[i] > 0 { w[i] = i } \nif a[i + 1] > 0 { z[i] = w[i - 1] } }",
	}
	for _, src := range corpus {
		runDepOracle(t, src, depOracleParams)
	}
}
