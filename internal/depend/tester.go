package depend

import (
	"fmt"
	"slices"
	"strings"

	"beyondiv/internal/dom"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
	"beyondiv/internal/safemath"
)

// tester holds per-analysis state for pair testing.
//
// All the equation arithmetic below is overflow-checked, and every
// overflow degrades in the conservative direction for a dependence
// tester: "assume dependence" (or "drop the distance/exactness
// refinement"), never "proven independent". An unchecked wraparound
// here would not crash — it would silently flip a verdict, which is
// the worst failure mode an analysis that licenses loop transformations
// can have.
type tester struct {
	a      *iv.Analysis
	opts   Options
	budget *guard.Budget
	// pdom is the postdominator tree, built on first use (§5.4).
	pdom *dom.Tree
	// scr holds the reusable equation-building tables for this run.
	scr *dependScratch
}

// postDom lazily builds the postdominator tree.
func (t *tester) postDom() *dom.Tree {
	if t.pdom == nil {
		t.pdom = dom.NewPost(t.a.SSA.Func)
	}
	return t.pdom
}

// strictAtSite implements §5.4's refinement: a non-strict monotonic
// subscript is strictly monotonic *at a particular use site* when the
// site is post-dominated by a strictly monotonic assignment of the same
// family — between two executions of the site, the increment must have
// executed ("any uses of k2 in this region are post-dominated by the
// strictly monotonic assignment").
func (t *tester) strictAtSite(ac *Access, cls *iv.Classification) bool {
	if cls.Strict {
		return true
	}
	if cls.HeadPhi == nil || ac.Loop == nil {
		return false
	}
	pd := t.postDom()
	for v, c := range t.a.LoopClassifications(ac.Loop) {
		if c.Kind == iv.Monotonic && c.Strict && c.HeadPhi == cls.HeadPhi {
			if pd.Dominates(v.Block, ac.Value.Block) {
				return true
			}
		}
	}
	return false
}

// testPair decides dependence between two accesses to the same array.
// It returns the dependences found (possibly empty) and whether the
// pair was proven independent.
func (t *tester) testPair(A, B *Access) ([]*Dependence, bool) {
	t.budget.Step()
	// An access inside a loop proven to run zero times never executes.
	for _, ac := range []*Access{A, B} {
		for l := ac.Loop; l != nil; l = l.Parent {
			tc := t.a.TripCount(l)
			if c, ok := tc.Const(); ok && c == 0 {
				return t.record(A, B, "zero-trip", nil, true)
			}
			if tc != nil && tc.HasMax && tc.MaxConst == 0 {
				return t.record(A, B, "zero-trip", nil, true)
			}
		}
	}

	// Subscript classifications, wrap-around subscripts already shifted
	// onto their induction sequence with the §6 after-k-iterations flag;
	// derived once per access and reused across every pair it joins.
	t.subscriptClass(A)
	t.subscriptClass(B)
	clsA, clsB := A.unwrapped, B.unwrapped
	after := A.after
	if B.after > after {
		after = B.after
	}

	// Periodic subscripts with known rings (§6, L22; also flip-flop
	// pairs like the paper's L12).
	if clsA != nil && clsB != nil && clsA.Kind == iv.Periodic && clsB.Kind == iv.Periodic &&
		A.Loop == B.Loop && A.Loop != nil {
		if deps, done := t.testPeriodic(A, B, clsA, clsB); done {
			return t.record(A, B, "periodic", deps, len(deps) == 0)
		}
	}

	// Monotonic family subscripts (§6, Figure 10).
	if clsA != nil && clsB != nil && clsA.Kind == iv.Monotonic && clsB.Kind == iv.Monotonic &&
		clsA.HeadPhi != nil && clsA.HeadPhi == clsB.HeadPhi && A.Loop == B.Loop {
		if deps, done := t.testMonotonic(A, B, clsA, clsB); done {
			return t.record(A, B, "monotonic", deps, len(deps) == 0)
		}
	}

	// Polynomial/geometric closed forms in one loop: exact evaluation
	// over the bounded space (§6's nod to [Ban76]). The affine machinery
	// cannot express these, so try before falling back.
	if A.Loop != nil && A.Loop == B.Loop &&
		hasClosedForm(clsA) && hasClosedForm(clsB) &&
		(isPolyGeo(clsA) || isPolyGeo(clsB)) {
		if deps, done := t.testPolynomial(A, B, clsA, clsB); done {
			for _, d := range deps {
				d.AfterIterations = after
			}
			return t.record(A, B, "polynomial-exact", deps, len(deps) == 0)
		}
	}

	// Affine path: dependence equation over iteration counters.
	formA := t.formOf(A, clsA)
	formB := t.formOf(B, clsB)
	if formA == nil || formB == nil {
		// No usable form: assume dependence in every direction.
		return t.record(A, B, "assumed", t.assumed(A, B), false)
	}
	deps, independent := t.testAffine(A, B, formA, formB, after)
	return t.record(A, B, "affine", deps, independent)
}

// record emits per-pair telemetry — the test counter keyed by decision
// procedure and outcome, and one provenance event per edge (or per
// refuted pair) — and passes the result through unchanged.
func (t *tester) record(A, B *Access, method string, deps []*Dependence, independent bool) ([]*Dependence, bool) {
	rec := t.opts.Obs
	if rec == nil {
		return deps, independent
	}
	rec.Count("depend.pairs.tested")
	if len(deps) > 0 {
		method = deps[0].Method
	}
	outcome := ".dependent"
	if independent {
		outcome = ".independent"
	}
	rec.Count("depend.test." + method + outcome)
	if len(deps) == 0 {
		verdict := "assumed dependent (no usable form)"
		if independent {
			verdict = "proven independent"
		}
		rec.Decide(A.String()+" vs "+B.String(), method, verdict)
	}
	for _, d := range deps {
		rec.Decide(d.Src.String()+" -> "+d.Dst.String(), d.Method, d.String())
	}
	return deps, independent
}

// subscriptClass classifies an access's subscript within its loop,
// memoizing both the raw class and its unwrapped refinement on the
// access so the pairwise loop derives each access's facts exactly once.
func (t *tester) subscriptClass(ac *Access) *iv.Classification {
	if !ac.clsDone {
		ac.clsDone = true
		if ac.Loop != nil {
			ac.cls = t.a.ClassOf(ac.Loop, ac.Value.Args[0])
		}
		ac.unwrapped, ac.after = unwrap(ac.cls, 0)
	}
	return ac.cls
}

// unwrap peels wrap-around subscripts onto their post-warm-up class.
func unwrap(c *iv.Classification, after int) (*iv.Classification, int) {
	for c != nil && c.Kind == iv.WrapAround && c.Inner != nil {
		shifted := shiftClass(c.Inner, c.Order, c.Loop)
		if shifted == nil {
			return c, after
		}
		if c.Order > after {
			after = c.Order
		}
		c = shifted
	}
	return c, after
}

// shiftClass rewrites Inner so that evaluating it at iteration h yields
// Inner(h - order): for a linear class, subtract order·step from the
// initial value.
func shiftClass(inner *iv.Classification, order int, l *loops.Loop) *iv.Classification {
	if inner.Kind != iv.Linear || inner.Init == nil || inner.Step == nil {
		return nil
	}
	init := iv.SubExpr(inner.Init, iv.ScaleExpr(inner.Step, rational.FromInt(int64(order))))
	if init == nil {
		return nil
	}
	return &iv.Classification{Kind: iv.Linear, Loop: l, Init: init, Step: inner.Step, HeadPhi: inner.HeadPhi}
}

// formOf builds the iteration form of an access's subscript, through
// the possibly unwrapped classification. The form is memoized on the
// access: cls is always the access's own unwrapped classification, so
// the result is a per-access fact independent of the pairing.
func (t *tester) formOf(ac *Access, cls *iv.Classification) *iv.IterForm {
	if !ac.formDone {
		ac.formDone = true
		switch {
		case ac.Loop == nil:
			// Outside loops: expand the raw subscript value.
			ac.form = t.a.IterFormOf(nil, ac.Value.Args[0])
		case cls != nil:
			ac.form = t.a.IterFormOfClass(ac.Loop, cls)
		}
	}
	return ac.form
}

// assumed emits the conservative catch-all dependences for an untestable
// pair.
func (t *tester) assumed(A, B *Access) []*Dependence {
	common := commonLoops(A, B)
	dirs := make([]Dir, len(common))
	for i := range dirs {
		dirs[i] = DirAll
	}
	src, dst := A, B
	if B.Order < A.Order {
		src, dst = B, A
	}
	out := []*Dependence{{
		Src: src, Dst: dst, Kind: kindOf(src, dst),
		Loops: common, Dirs: dirs, Method: "assumed",
	}}
	if len(common) > 0 && A != B {
		rev := make([]Dir, len(common))
		copy(rev, dirs)
		out = append(out, &Dependence{
			Src: dst, Dst: src, Kind: kindOf(dst, src),
			Loops: common, Dirs: rev, Method: "assumed",
		})
	}
	return out
}

func kindOf(src, dst *Access) Kind {
	switch {
	case src.Write && dst.Write:
		return Output
	case src.Write:
		return Flow
	case dst.Write:
		return Anti
	default:
		return Input
	}
}

// ---- periodic families (§6, L22) ----

// testPeriodic handles two periodic subscripts with fully constant
// rings of equal period — one family (the paper's L22 swap) or two
// parallel flip-flops (the paper's L12 pair: "for any fixed iter, j
// and jold have different values"). The subscripts collide exactly
// when hB - hA lands in a residue class mod the period; each feasible
// residue yields one dependence per ordering.
func (t *tester) testPeriodic(A, B *Access, ca, cb *iv.Classification) ([]*Dependence, bool) {
	p := ca.Period
	if p < 2 || cb.Period != p {
		return nil, false
	}
	ringA, okA := constRing(ca)
	ringB, okB := constRing(cb)
	if !okA || !okB {
		return nil, false
	}
	// value at iteration h is ring[(phase - h) mod p]; equality at
	// (hA, hB) iff ringA[(phA-hA) mod p] == ringB[(phB-hB) mod p].
	// For each matching slot pair (a, b): hB - hA ≡ (phB-b) - (phA-a)
	// (mod p).
	residues := map[int]bool{}
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			if ringA[a].Equal(ringB[b]) {
				r := ((cb.Phase - b - ca.Phase + a) % p)
				residues[((r%p)+p)%p] = true
			}
		}
	}
	eqn := fmt.Sprintf("ringA(%d - h) = ringB(%d - h')", ca.Phase, cb.Phase)

	var out []*Dependence
	mk := func(src, dst *Access, residue int) {
		dirs := DirLT
		if residue == 0 {
			// Same-iteration collisions exist; order within the body.
			if src.Order < dst.Order || src == dst {
				dirs |= DirEQ
			}
		}
		if src == dst && residue == 0 {
			dirs &^= DirEQ // the same instance is not a dependence
			if dirs == 0 {
				return
			}
		}
		out = append(out, &Dependence{
			Src: src, Dst: dst, Kind: kindOf(src, dst),
			Loops: []*loops.Loop{A.Loop}, Dirs: []Dir{dirs},
			Modulus: p, Residue: residue,
			Equation: eqn, Method: "periodic",
		})
	}
	for r := 0; r < p; r++ {
		if !residues[r] {
			continue
		}
		mk(A, B, r)
		if A != B {
			mk(B, A, (p-r)%p)
		}
	}
	return out, true // possibly empty: proven independent
}

// constRing extracts a periodic classification's ring as constants.
func constRing(c *iv.Classification) ([]rational.Rat, bool) {
	if len(c.Initials) != c.Period {
		return nil, false
	}
	out := make([]rational.Rat, c.Period)
	for i, e := range c.Initials {
		v, ok := e.ConstVal()
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// ---- monotonic families (§6, Figure 10) ----

// testMonotonic handles two subscripts in one monotonic family:
// strict + identical subscript value ⇒ (=) only; otherwise the ordered
// pair gets (≤) and the reversed pair (<).
func (t *tester) testMonotonic(A, B *Access, ca, cb *iv.Classification) ([]*Dependence, bool) {
	sameValue := A.Value.Args[0] == B.Value.Args[0]
	l := A.Loop
	var out []*Dependence

	// §5.4: both sites strict — either family-wide or by being
	// post-dominated by the strict increment.
	strictBoth := t.strictAtSite(A, ca) && t.strictAtSite(B, cb)
	if sameValue && strictBoth {
		// Distinct iterations give distinct subscripts: only the
		// loop-independent dependence remains (paper: array B ⇒ (=),
		// and array C's self-output disappears entirely).
		src, dst := A, B
		if B.Order < A.Order {
			src, dst = B, A
		}
		if A != B {
			method := "monotonic-strict"
			if !ca.Strict {
				method = "monotonic-strict-at-site" // §5.4 upgrade
			}
			out = append(out, &Dependence{
				Src: src, Dst: dst, Kind: kindOf(src, dst),
				Loops: []*loops.Loop{l}, Dirs: []Dir{DirEQ},
				Method: method,
			})
		}
		return out, true
	}

	// Non-strict (or different members): plateaus allow reuse in later
	// iterations but never earlier ones with a different value — the
	// ordered pair carries (≤), the reverse (<) (paper: array F).
	mk := func(src, dst *Access, dirs Dir) {
		out = append(out, &Dependence{
			Src: src, Dst: dst, Kind: kindOf(src, dst),
			Loops: []*loops.Loop{l}, Dirs: []Dir{dirs},
			Method: "monotonic",
		})
	}
	first, second := A, B
	if B.Order < A.Order {
		first, second = B, A
	}
	if A == B {
		mk(A, A, DirLT)
	} else {
		mk(first, second, DirLT|DirEQ)
		mk(second, first, DirLT)
	}
	return out, true
}

// ---- affine dependence equations (§6) ----

// variable is one unknown of the dependence equation after direction
// substitution: an integer coefficient and inclusive bounds (nil bound
// = unbounded on that side).
type variable struct {
	coeff  int64
	lo, hi *int64
}

// testAffine enumerates direction vectors over the common nest and
// tests each with the exact enumerator (small constant spaces), the GCD
// test, and Banerjee-style interval bounds.
func (t *tester) testAffine(A, B *Access, fa, fb *iv.IterForm, after int) ([]*Dependence, bool) {
	common := commonLoops(A, B)

	eq, ok := t.buildEquation(A, B, fa, fb, common)
	if !ok {
		return t.assumed(A, B), false
	}

	// Enumerate direction vectors {<,=,>}^d.
	nd := len(common)
	total := 1
	for i := 0; i < nd; i++ {
		total *= 3
	}
	type found struct {
		srcA bool // A executes first
		dirs []Dir
	}
	var feasibles []found
	for mask := 0; mask < total; mask++ {
		psi := make([]Dir, nd)
		m := mask
		for i := 0; i < nd; i++ {
			psi[i] = []Dir{DirLT, DirEQ, DirGT}[m%3]
			m /= 3
		}
		if !t.feasible(eq, common, psi) {
			continue
		}
		// Who runs first? First non-= entry; all-= uses body order.
		srcA := A.Order <= B.Order
		loopIndependent := true
		for _, d := range psi {
			if d == DirLT {
				srcA, loopIndependent = true, false
				break
			}
			if d == DirGT {
				srcA, loopIndependent = false, false
				break
			}
		}
		if A == B {
			if loopIndependent {
				continue // same instance
			}
			if !srcA {
				continue // mirror image of an already-counted vector
			}
		}
		// Express the vector from the source's point of view.
		dirs := make([]Dir, nd)
		for i, d := range psi {
			if srcA {
				dirs[i] = d
			} else {
				dirs[i] = flip(d)
			}
		}
		feasibles = append(feasibles, found{srcA: srcA, dirs: dirs})
	}
	if len(feasibles) == 0 {
		return nil, true
	}

	// The exact enumerators can also determine whether all solutions
	// share one distance vector (dst iteration minus src iteration).
	var distAB []int64
	haveDist := false
	if len(eq.per) > 0 {
		// slot-dependent: no single distance vector
	} else if t.deltaApplicable(eq) {
		if feasible, dd, unique := t.deltaSolve(eq, nil); feasible && unique {
			distAB, haveDist = dd, true
		}
	} else {
		distAB, haveDist = t.exactDistance(eq)
	}

	// Merge by source, unioning directions per loop.
	var out []*Dependence
	for _, srcA := range []bool{true, false} {
		merged := make([]Dir, nd)
		n := 0
		for _, f := range feasibles {
			if f.srcA != srcA {
				continue
			}
			n++
			for i, d := range f.dirs {
				merged[i] |= d
			}
		}
		if n == 0 {
			continue
		}
		src, dst := A, B
		if !srcA {
			src, dst = B, A
		}
		dep := &Dependence{
			Src: src, Dst: dst, Kind: kindOf(src, dst),
			Loops: common, Dirs: merged,
			AfterIterations: after,
			Equation:        eq.text,
			Method:          eq.method,
		}
		if haveDist {
			dep.Distance = make([]int64, nd)
			for i, d := range distAB {
				if srcA {
					dep.Distance[i] = d
				} else {
					dep.Distance[i] = -d
				}
			}
		}
		out = append(out, dep)
	}
	return out, false
}

// exactDistance enumerates the bounded solution space and reports the
// common per-loop distance hB - hA when every solution shares it.
func (t *tester) exactDistance(eq *equation) ([]int64, bool) {
	nd := len(eq.ca)
	if nd == 0 || len(eq.per) > 0 {
		return nil, false
	}
	if _, ok := t.boxSize(eq); !ok || !sumBoundOK(eq) {
		return nil, false
	}

	ha := make([]int64, nd)
	hb := make([]int64, nd)
	solo := make([]int64, len(eq.solos))
	var dist []int64
	unique := true

	var recSolo func(k int) bool
	recSolo = func(k int) bool {
		if k == len(eq.solos) {
			sum := int64(0)
			for i := 0; i < nd; i++ {
				sum += eq.ca[i]*ha[i] - eq.cb[i]*hb[i]
			}
			for i, s := range eq.solos {
				sum += s.coeff * solo[i]
			}
			return sum == eq.rhs
		}
		for v := *eq.solos[k].lo; v <= *eq.solos[k].hi; v++ {
			solo[k] = v
			if recSolo(k + 1) {
				return true
			}
		}
		return false
	}
	var rec func(dim int)
	rec = func(dim int) {
		if !unique {
			return
		}
		if dim == nd {
			if !recSolo(0) {
				return
			}
			d := make([]int64, nd)
			for i := 0; i < nd; i++ {
				d[i] = hb[i] - ha[i]
			}
			if dist == nil {
				dist = d
				return
			}
			for i := range d {
				if d[i] != dist[i] {
					unique = false
					return
				}
			}
			return
		}
		for a := int64(0); a <= *eq.ubA[dim]; a++ {
			for b := int64(0); b <= *eq.ubB[dim]; b++ {
				ha[dim], hb[dim] = a, b
				rec(dim + 1)
				if !unique {
					return
				}
			}
		}
	}
	rec(0)
	return dist, unique && dist != nil
}

func flip(d Dir) Dir {
	switch d {
	case DirLT:
		return DirGT
	case DirGT:
		return DirLT
	}
	return d
}

// equation is formA(h) - formB(h') = -constDiff in integer form.
type equation struct {
	// Per common loop: coefficients of hA and hB (indices align with
	// the common slice) and per-side iteration bounds (nil = unknown).
	// Bounds differ per side because code above a mid-loop exit test
	// executes once more than the trip count (§5.2).
	ca, cb []int64
	ubA    []*int64
	ubB    []*int64
	// solo variables (loops of only one side, and symbols).
	solos []variable
	// per carries periodic subscript terms; the tester enumerates ring
	// slots (see testAffine).
	per []perEq
	// rhs: the equation is Σ ca·hA - Σ cb·hB + Σ solo = rhs.
	rhs    int64
	text   string
	method string
}

// perEq is one periodic contribution: on the given side and common-loop
// dimension, the subscript includes contrib[slot] where slot is the ring
// position selected by the iteration: slot ≡ (phase - h) mod p.
type perEq struct {
	dim     int // index into the common loops
	side    int // 0 = A, 1 = B
	phase   int
	p       int
	contrib []int64 // den-scaled coefficient·ring[slot]
}

// modConstraint pins one side's iteration in a dimension to a residue
// class.
type modConstraint struct {
	dim, side, residue, p int
}

// buildEquation clears denominators and splits the two forms into
// common-loop coefficients, solo variables, and symbols.
func (t *tester) buildEquation(A, B *Access, fa, fb *iv.IterForm, common []*loops.Loop) (*equation, bool) {
	// The common nest is at most a few loops deep: a linear scan beats
	// allocating a lookup map per pair.
	inCommon := func(l *loops.Loop) (int, bool) {
		for i, cl := range common {
			if cl == l {
				return i, true
			}
		}
		return 0, false
	}

	// Collect all rationals to scale to integers.
	okAll := true
	den := int64(1)
	scale := func(r rational.Rat) {
		d, ok := lcm(den, r.Den())
		if !ok {
			okAll = false
			return
		}
		den = d
	}
	scale(fa.Const)
	scale(fb.Const)
	for _, c := range fa.Coeffs {
		scale(c)
	}
	for _, c := range fb.Coeffs {
		scale(c)
	}
	for _, c := range fa.Syms {
		scale(c)
	}
	for _, c := range fb.Syms {
		scale(c)
	}
	toInt := func(r rational.Rat) (int64, bool) {
		v := r.Mul(rational.FromInt(den))
		return v.Num(), v.Valid() && v.IsInt()
	}

	eq := &equation{
		ca:  make([]int64, len(common)),
		cb:  make([]int64, len(common)),
		ubA: make([]*int64, len(common)),
		ubB: make([]*int64, len(common)),
	}
	take := func(r rational.Rat) int64 {
		v, ok := toInt(r)
		if !ok {
			okAll = false
		}
		return v
	}

	for i, l := range common {
		eq.ca[i] = take(fa.Coeff(l))
		eq.cb[i] = take(fb.Coeff(l))
		if u, ok := t.iterBound(l, A); ok {
			eq.ubA[i] = u
		}
		if u, ok := t.iterBound(l, B); ok {
			eq.ubB[i] = u
		}
	}
	zero := int64(0)
	soloLoop := func(f *iv.IterForm, sign int64, ac *Access) {
		for _, l := range f.Loops() {
			if _, ok := inCommon(l); ok {
				continue
			}
			c := take(f.Coeffs[l])
			if sign < 0 {
				n, ok := safemath.Neg(c)
				if !ok {
					okAll = false
				}
				c = n
			}
			v := variable{coeff: c, lo: &zero}
			if u, ok := t.iterBound(l, ac); ok {
				v.hi = u
			}
			eq.solos = append(eq.solos, v)
		}
	}
	soloLoop(fa, 1, A)
	soloLoop(fb, -1, B)

	// Symbols: matching coefficients cancel; leftovers are free
	// unbounded integers (conservative). The accumulator is the run
	// scratch's dense value-id table, and leftovers emit in value-id
	// order so the equation is deterministic.
	scr := t.scr
	scr.beginEquation()
	for v, c := range fa.Syms {
		slot := scr.symAccum(v)
		s, ok := safemath.Add(*slot, take(c))
		if !ok {
			okAll = false
		}
		*slot = s
	}
	for v, c := range fb.Syms {
		slot := scr.symAccum(v)
		s, ok := safemath.Sub(*slot, take(c))
		if !ok {
			okAll = false
		}
		*slot = s
	}
	slices.SortFunc(scr.symTouched, ir.ByID)
	for _, v := range scr.symTouched {
		if c := scr.symCoeff[v.ID]; c != 0 {
			eq.solos = append(eq.solos, variable{coeff: c})
		}
	}

	// Periodic subscript terms (composite selector+affine subscripts):
	// each must live on a common loop with a constant ring.
	addPer := func(f *iv.IterForm, side int) bool {
		for _, pt := range f.Per {
			cls := pt.Cls
			dim, ok := inCommon(cls.Loop)
			if !ok {
				return false
			}
			pe := perEq{dim: dim, side: side, phase: cls.Phase, p: cls.Period}
			for _, e := range cls.Initials {
				rv, okc := e.ConstVal()
				if !okc {
					return false
				}
				c, okc2 := toInt(pt.Coeff.Mul(rv))
				if !okc2 {
					return false
				}
				pe.contrib = append(pe.contrib, c)
			}
			eq.per = append(eq.per, pe)
		}
		return true
	}
	if !addPer(fa, 0) || !addPer(fb, 1) {
		return nil, false
	}

	ka := take(fa.Const)
	kb := take(fb.Const)
	rhs, ok := safemath.Sub(kb, ka)
	if !ok || !okAll {
		return nil, false
	}
	eq.rhs = rhs
	eq.text = renderEquation(fa, fb)
	return eq, true
}

// iterBound returns the inclusive upper bound of the loop iteration
// number at which access ac can execute. The §5.2 count is the number
// of times the exit test stays, so code above the test runs at
// h = 0..count while code provably below it runs at h = 0..count-1.
func (t *tester) iterBound(l *loops.Loop, ac *Access) (*int64, bool) {
	tc := t.a.TripCount(l)
	base, ok := tc.Const()
	if !ok {
		if tc == nil || !tc.HasMax {
			return nil, false
		}
		base = tc.MaxConst
	}
	u := base // sound for any position in the loop
	if tc.Exit != nil && belowExit(t.a, l, tc.Exit, ac) {
		u = base - 1
	}
	return &u, true
}

// belowExit reports whether the access provably executes only after the
// exit test has stayed: its block is dominated by the exit edge's
// stay-successor (the successor that remains in the loop).
func belowExit(a *iv.Analysis, l *loops.Loop, exit *ir.Block, ac *Access) bool {
	var stay *ir.Block
	for _, s := range exit.Succs {
		if l.Contains(s) {
			stay = s
		}
	}
	if stay == nil {
		return false
	}
	return a.SSA.Dom.Dominates(stay, ac.Value.Block)
}

func renderEquation(fa, fb *iv.IterForm) string {
	sa := strings.ReplaceAll(fa.String(), "h(", "h(")
	sb := strings.ReplaceAll(fb.String(), "h(", "h'(")
	return sa + " = " + sb
}

// lcm returns the least common multiple, reporting ok=false when it
// does not fit in int64 — buildEquation then abandons the affine form
// and the pair is assumed dependent.
func lcm(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 1, true
	}
	g := gcd(a, b)
	return safemath.Mul(a/g, b)
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// feasible tests a direction vector: exact enumeration when the space
// is small, otherwise GCD plus Banerjee interval bounds (conservative:
// may say yes when no solution exists, never the reverse).
func (t *tester) feasible(eq *equation, common []*loops.Loop, psi []Dir) bool {
	t.budget.Step()
	if len(eq.per) > 0 {
		return t.feasibleWithSlots(eq, psi)
	}
	if t.deltaApplicable(eq) {
		eq.method = "delta"
		ok, _, _ := t.deltaSolve(eq, psi)
		return ok
	}
	if ok, exact := t.exactFeasible(eq, psi); exact {
		return ok
	}
	eq.method = "gcd+banerjee"
	vars, ok := substitute(eq, psi)
	if !ok {
		return true // overflow: assume dependence
	}
	if vars == nil {
		return false
	}
	// GCD test.
	g := int64(0)
	for _, v := range vars.vars {
		g = gcd(g, v.coeff)
	}
	if g == 0 {
		if vars.rhs != 0 {
			return false
		}
	} else if vars.rhs%g != 0 {
		return false
	}
	// Banerjee interval.
	lo, hi := interval(vars.vars)
	if lo.finite && vars.rhs < lo.v {
		return false
	}
	if hi.finite && vars.rhs > hi.v {
		return false
	}
	return true
}

type substituted struct {
	vars []variable
	rhs  int64
}

// substitute folds the direction constraints into fresh variables:
//
//	=  : hA = hB = z              coeff (ca-cb), range [0,U]
//	<  : hA = hB - 1 - s, s ≥ 0   coeffs (ca-cb) on hB∈[1,U], -ca on s
//	>  : hA = hB + 1 + s, s ≥ 0   coeffs (ca-cb) on hB∈[0,U-1], +ca on s
//
// Returns out=nil with ok=true when a bound makes the direction
// impossible (e.g. < in a single-iteration loop), and ok=false when the
// substitution arithmetic overflows — the caller must then treat the
// direction as feasible (assume dependence), which is the opposite of
// the nil-out case, so the two must not be conflated.
func substitute(eq *equation, psi []Dir) (out *substituted, ok bool) {
	out = &substituted{rhs: eq.rhs}
	zero := int64(0)
	one := int64(1)
	for i := range eq.ca {
		ca, cb := eq.ca[i], eq.cb[i]
		diff, okD := safemath.Sub(ca, cb)
		if !okD {
			return nil, false
		}
		ubA, ubB := eq.ubA[i], eq.ubB[i]
		switch psi[i] {
		case DirEQ:
			// z = hA = hB: bounded by the tighter side.
			ub := ubA
			if ub == nil || (ubB != nil && *ubB < *ub) {
				ub = ubB
			}
			out.vars = append(out.vars, variable{coeff: diff, lo: &zero, hi: ub})
		case DirLT:
			// hA = hB - 1 - s: hB ≥ 1, s ≥ 0.
			if ubB != nil && *ubB < 1 {
				return nil, true
			}
			if ubA != nil && *ubA < 0 {
				return nil, true
			}
			negCA, okN := safemath.Neg(ca)
			rhs, okR := safemath.Add(out.rhs, ca)
			if !okN || !okR {
				return nil, false
			}
			out.vars = append(out.vars, variable{coeff: diff, lo: &one, hi: ubB})
			out.vars = append(out.vars, variable{coeff: negCA, lo: &zero, hi: ubA})
			out.rhs = rhs
		case DirGT:
			// hA = hB + 1 + s: hB ≤ ubB and hA ≤ ubA ⇒ hB ≤ ubA-1 too.
			if ubA != nil && *ubA < 1 {
				return nil, true
			}
			hiB := ubB
			if ubA != nil {
				u := *ubA - 1
				if hiB == nil || u < *hiB {
					hiB = &u
				}
			}
			rhs, okR := safemath.Sub(out.rhs, ca)
			if !okR {
				return nil, false
			}
			out.vars = append(out.vars, variable{coeff: diff, lo: &zero, hi: hiB})
			out.vars = append(out.vars, variable{coeff: ca, lo: &zero, hi: ubA})
			out.rhs = rhs
		}
	}
	out.vars = append(out.vars, eq.solos...)
	return out, true
}

type extreme struct {
	v      int64
	finite bool
}

// interval sums per-variable contribution ranges. A product or sum
// that overflows widens that side to infinity — the Banerjee exclusion
// then cannot fire on it, which is the conservative direction.
func interval(vars []variable) (lo, hi extreme) {
	lo, hi = extreme{0, true}, extreme{0, true}
	mul := func(a, b int64) extreme {
		v, ok := safemath.Mul(a, b)
		return extreme{v, ok}
	}
	for _, v := range vars {
		if v.coeff == 0 {
			continue
		}
		var vlo, vhi extreme
		switch {
		case v.lo != nil && v.hi != nil:
			a, b := mul(v.coeff, *v.lo), mul(v.coeff, *v.hi)
			if a.finite && b.finite && a.v > b.v {
				a, b = b, a
			} else if a.finite != b.finite {
				// One end overflowed: keep only the finite end on the
				// side a positive/negative coefficient sends it to.
				fin := a
				if b.finite {
					fin = b
				}
				if (v.coeff > 0) == (fin == a) {
					a, b = fin, extreme{}
				} else {
					a, b = extreme{}, fin
				}
			}
			vlo, vhi = a, b
		case v.lo != nil: // [lo, +inf)
			if v.coeff > 0 {
				vlo, vhi = mul(v.coeff, *v.lo), extreme{}
			} else {
				vlo, vhi = extreme{}, mul(v.coeff, *v.lo)
			}
		case v.hi != nil: // (-inf, hi]
			if v.coeff > 0 {
				vlo, vhi = extreme{}, mul(v.coeff, *v.hi)
			} else {
				vlo, vhi = mul(v.coeff, *v.hi), extreme{}
			}
		default:
			vlo, vhi = extreme{}, extreme{}
		}
		lo = addExtreme(lo, vlo)
		hi = addExtreme(hi, vhi)
	}
	return lo, hi
}

func addExtreme(a, b extreme) extreme {
	if !a.finite || !b.finite {
		return extreme{}
	}
	v, ok := safemath.Add(a.v, b.v)
	if !ok {
		return extreme{}
	}
	return extreme{v, true}
}

// mulCap multiplies box dimensions with overflow checking, failing when
// the product leaves the exact-enumeration ceiling.
func mulCap(size, n, cap int64) (int64, bool) {
	p, ok := safemath.Mul(size, n)
	if !ok || p > cap {
		return 0, false
	}
	return p, true
}

// boxSize computes the equation's enumeration-box size. ok=false means
// the box is unbounded, or its size overflows or exceeds the exact
// ceiling; the enumerators must then decline (the unchecked version of
// this product could wrap to a small positive number and license an
// effectively unbounded enumeration — a denial of service). A size of
// zero means some dimension is genuinely empty.
func (t *tester) boxSize(eq *equation) (int64, bool) {
	max := int64(t.opts.maxExact())
	size := int64(1)
	dim := func(lo, hi int64) bool {
		if hi < lo {
			size = 0
			return true
		}
		n, ok := safemath.Sub(hi, lo)
		if ok {
			n, ok = safemath.Add(n, 1)
		}
		if ok {
			size, ok = mulCap(size, n, max)
		}
		return ok
	}
	for i := range eq.ca {
		if eq.ubA[i] == nil || eq.ubB[i] == nil {
			return 0, false
		}
		if !dim(0, *eq.ubA[i]) || !dim(0, *eq.ubB[i]) {
			return 0, false
		}
	}
	for _, s := range eq.solos {
		if s.lo == nil || s.hi == nil {
			return 0, false
		}
		if !dim(*s.lo, *s.hi) {
			return 0, false
		}
	}
	return size, true
}

// sumBoundOK reports whether every partial sum the enumerators compute
// over the equation's box provably fits in int64, so their inner loops
// can use raw arithmetic. The bound is Σ |c|·max|var| over every term;
// any overflow while computing the bound itself counts as "not provably
// safe" and the enumerators decline.
func sumBoundOK(eq *equation) bool {
	total := int64(0)
	add := func(c, ub int64) bool {
		a, ok := safemath.Abs(c)
		if ok {
			a, ok = safemath.Mul(a, ub)
		}
		if ok {
			total, ok = safemath.Add(total, a)
		}
		return ok
	}
	for i := range eq.ca {
		if eq.ubA[i] == nil || eq.ubB[i] == nil {
			return false
		}
		if *eq.ubA[i] < 0 || *eq.ubB[i] < 0 {
			continue // empty dimension: never enumerated
		}
		if !add(eq.ca[i], *eq.ubA[i]) || !add(eq.cb[i], *eq.ubB[i]) {
			return false
		}
	}
	for _, s := range eq.solos {
		if s.lo == nil || s.hi == nil {
			return false
		}
		m, ok := safemath.Abs(*s.lo)
		if !ok {
			return false
		}
		m2, ok := safemath.Abs(*s.hi)
		if !ok {
			return false
		}
		if m2 > m {
			m = m2
		}
		if !add(s.coeff, m) {
			return false
		}
	}
	return true
}

// exactFeasible enumerates the full iteration box when it is small and
// fully bounded with no symbolic variables. Returns (answer, applied).
func (t *tester) exactFeasible(eq *equation, psi []Dir) (bool, bool) {
	size, ok := t.boxSize(eq)
	if !ok || !sumBoundOK(eq) {
		return false, false
	}
	if size == 0 {
		return false, true // an empty dimension: nothing ever executes
	}
	eq.method = "exact"

	nd := len(eq.ca)
	ha := make([]int64, nd)
	hb := make([]int64, nd)
	solo := make([]int64, len(eq.solos))

	var rec func(dim int) bool
	var evalSolo func(k int) bool
	evalSolo = func(k int) bool {
		if k == len(eq.solos) {
			// Evaluate the equation.
			sum := int64(0)
			for i := 0; i < nd; i++ {
				sum += eq.ca[i]*ha[i] - eq.cb[i]*hb[i]
			}
			for i, s := range eq.solos {
				sum += s.coeff * solo[i]
			}
			return sum == eq.rhs
		}
		for v := *eq.solos[k].lo; v <= *eq.solos[k].hi; v++ {
			solo[k] = v
			if evalSolo(k + 1) {
				return true
			}
		}
		return false
	}
	rec = func(dim int) bool {
		if dim == nd {
			return evalSolo(0)
		}
		uA, uB := *eq.ubA[dim], *eq.ubB[dim]
		for a := int64(0); a <= uA; a++ {
			for b := int64(0); b <= uB; b++ {
				switch psi[dim] {
				case DirLT:
					if !(a < b) {
						continue
					}
				case DirEQ:
					if a != b {
						continue
					}
				case DirGT:
					if !(a > b) {
						continue
					}
				}
				ha[dim], hb[dim] = a, b
				if rec(dim + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0), true
}

// ---- polynomial subscripts (§6's pointer to [Ban76]) ----

// hasClosedForm reports whether the classification evaluates exactly at
// any iteration (numeric linear, polynomial, or geometric).
func hasClosedForm(c *iv.Classification) bool {
	if c == nil {
		return false
	}
	switch c.Kind {
	case iv.Invariant:
		_, ok := c.Expr.ConstVal()
		return ok
	case iv.Linear:
		_, _, ok := c.LinearConst()
		return ok
	case iv.Polynomial, iv.Geometric:
		return c.Coeffs != nil
	}
	return false
}

// isPolyGeo reports a class the affine machinery cannot express.
func isPolyGeo(c *iv.Classification) bool {
	return c != nil && (c.Kind == iv.Polynomial || c.Kind == iv.Geometric)
}

// testPolynomial decides dependence between two closed-form subscripts
// of one loop by exact evaluation over the bounded iteration space —
// the paper's pointer at Banerjee's treatment of polynomial induction
// variables made concrete. Returns done=false when the loop bounds are
// unknown or the space is too large.
func (t *tester) testPolynomial(A, B *Access, ca, cb *iv.Classification) ([]*Dependence, bool) {
	ubA, okA := t.iterBound(A.Loop, A)
	ubB, okB := t.iterBound(B.Loop, B)
	if !okA || !okB {
		return nil, false
	}
	na, okNA := safemath.Add(*ubA, 1)
	nb, okNB := safemath.Add(*ubB, 1)
	if !okNA || !okNB {
		return nil, false
	}
	if sz, ok := safemath.Mul(na, nb); !ok || sz > int64(t.opts.maxExact()) {
		return nil, false
	}

	type rel struct {
		dir  Dir
		dist int64
	}
	var rels []rel
	for h1 := int64(0); h1 <= *ubA; h1++ {
		v1, ok1 := ca.PolyEval(h1)
		if !ok1 {
			return nil, false
		}
		for h2 := int64(0); h2 <= *ubB; h2++ {
			v2, ok2 := cb.PolyEval(h2)
			if !ok2 {
				return nil, false
			}
			if !v1.Equal(v2) {
				continue
			}
			switch {
			case h1 < h2:
				rels = append(rels, rel{DirLT, h2 - h1})
			case h1 == h2:
				rels = append(rels, rel{DirEQ, 0})
			default:
				rels = append(rels, rel{DirGT, h2 - h1})
			}
		}
	}
	if len(rels) == 0 {
		return nil, true // proven independent
	}

	// Merge into at most two ordered dependences, with an exact
	// distance when all solutions share one.
	var out []*Dependence
	for _, srcA := range []bool{true, false} {
		dirs := Dir(0)
		var dist *int64
		distUnique := true
		n := 0
		for _, r := range rels {
			effSrcA := r.dir != DirGT // A first unless A's iteration is later
			if r.dir == DirEQ {
				effSrcA = A.Order <= B.Order
				if A == B {
					continue // same instance
				}
			}
			if effSrcA != srcA {
				continue
			}
			if A == B && !srcA {
				continue // mirror of a counted pair
			}
			n++
			d := r.dir
			dd := r.dist
			if !srcA {
				d = flip(d)
				dd = -dd
			}
			dirs |= d
			if dist == nil {
				v := dd
				dist = &v
			} else if *dist != dd {
				distUnique = false
			}
		}
		if n == 0 {
			continue
		}
		src, dst := A, B
		if !srcA {
			src, dst = B, A
		}
		dep := &Dependence{
			Src: src, Dst: dst, Kind: kindOf(src, dst),
			Loops: []*loops.Loop{A.Loop}, Dirs: []Dir{dirs},
			Method: "polynomial-exact",
		}
		if distUnique && dist != nil {
			dep.Distance = []int64{*dist}
		}
		out = append(out, dep)
	}
	return out, true
}

// ---- distance-space solving (delta-test style, [GKT91]) ----

// deltaApplicable reports whether the equation can be solved over
// distance vectors: every common loop has equal coefficients on both
// sides (strong SIV per dimension), there are no solo variables, and
// the distance box is small enough to enumerate. The distance space has
// size Π(ubA+ubB+1) — linear in the trip counts where the iteration
// space is quadratic.
func (t *tester) deltaApplicable(eq *equation) bool {
	if len(eq.solos) != 0 || len(eq.ca) == 0 {
		return false
	}
	max := int64(t.opts.maxExact())
	size := int64(1)
	for i := range eq.ca {
		if eq.ca[i] != eq.cb[i] {
			return false
		}
		if eq.ubA[i] == nil || eq.ubB[i] == nil {
			return false
		}
		n, ok := safemath.Add(*eq.ubA[i], *eq.ubB[i])
		if ok {
			n, ok = safemath.Add(n, 1)
		}
		if ok {
			size, ok = mulCap(size, n, max)
		}
		if !ok || n <= 0 {
			return false
		}
	}
	return sumBoundOK(eq)
}

// deltaSolve enumerates distance vectors d (d_k = hB_k - hA_k, each
// realizable within the per-side boxes) satisfying the equation and the
// direction constraints; returns whether any solution exists and, when
// all solutions agree, the unique distance vector.
func (t *tester) deltaSolve(eq *equation, psi []Dir) (feasible bool, dist []int64, unique bool) {
	return t.deltaSolveUnified(eq, psi, nil)
}

func (t *tester) feasibleWithSlots(eq *equation, psi []Dir) bool {
	combos := 1
	for _, pe := range eq.per {
		combos *= pe.p
		if combos > 1<<10 {
			return true // too many rings: conservatively dependent
		}
	}
	eq.method = "periodic+affine"
	slots := make([]int, len(eq.per))
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(eq.per) {
			adj := eq.rhs
			var mods []modConstraint
			for i, pe := range eq.per {
				c := pe.contrib[slots[i]]
				// The term sits inside a form: formA - formB = 0 moves
				// A-side constants negatively into rhs, B-side positively.
				var ok bool
				if pe.side == 0 {
					adj, ok = safemath.Sub(adj, c)
				} else {
					adj, ok = safemath.Add(adj, c)
				}
				if !ok {
					return true // overflow: assume dependence
				}
				// slot ≡ (phase - h) mod p  ⇒  h ≡ (phase - slot) mod p.
				r := ((pe.phase-slots[i])%pe.p + pe.p) % pe.p
				mods = append(mods, modConstraint{dim: pe.dim, side: pe.side, residue: r, p: pe.p})
			}
			sub := *eq
			sub.per = nil
			sub.rhs = adj
			return t.feasibleMods(&sub, psi, mods)
		}
		for v := 0; v < eq.per[k].p; v++ {
			slots[k] = v
			if rec(k + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// feasibleMods tests a direction vector under per-side modular
// constraints: exactly when bounded and small, conservatively otherwise
// (delta with derived distance residues, then GCD+Banerjee ignoring the
// residues — both sound over-approximations).
func (t *tester) feasibleMods(eq *equation, psi []Dir, mods []modConstraint) bool {
	if ok, exact := t.exactFeasibleMods(eq, psi, mods); exact {
		return ok
	}
	if t.deltaApplicable(eq) {
		// Combine same-dim A/B constraints into distance residues.
		type key struct{ dim, p int }
		aRes := map[key]int{}
		bRes := map[key]int{}
		for _, m := range mods {
			if m.side == 0 {
				aRes[key{m.dim, m.p}] = m.residue
			} else {
				bRes[key{m.dim, m.p}] = m.residue
			}
		}
		dmods := map[int][2]int{} // dim -> (residue, p)
		for k, ra := range aRes {
			if rb, ok := bRes[k]; ok {
				dmods[k.dim] = [2]int{((rb-ra)%k.p + k.p) % k.p, k.p}
			}
		}
		ok, _, _ := t.deltaSolveUnified(eq, psi, dmods)
		return ok
	}
	// Fall back to the affine machinery without the residues.
	vars, ok := substitute(eq, psi)
	if !ok {
		return true // overflow: assume dependence
	}
	if vars == nil {
		return false
	}
	g := int64(0)
	for _, v := range vars.vars {
		g = gcd(g, v.coeff)
	}
	if g == 0 {
		if vars.rhs != 0 {
			return false
		}
	} else if vars.rhs%g != 0 {
		return false
	}
	lo, hi := interval(vars.vars)
	if lo.finite && vars.rhs < lo.v {
		return false
	}
	if hi.finite && vars.rhs > hi.v {
		return false
	}
	return true
}

// exactFeasibleMods is exactFeasible with per-side residue filters.
func (t *tester) exactFeasibleMods(eq *equation, psi []Dir, mods []modConstraint) (bool, bool) {
	nd := len(eq.ca)
	size, ok := t.boxSize(eq)
	if !ok || !sumBoundOK(eq) {
		return false, false
	}
	if size == 0 {
		return false, true // an empty dimension: nothing ever executes
	}

	okMod := func(dim int, side int, h int64) bool {
		for _, m := range mods {
			if m.dim == dim && m.side == side {
				if int((h%int64(m.p)+int64(m.p))%int64(m.p)) != m.residue {
					return false
				}
			}
		}
		return true
	}

	ha := make([]int64, nd)
	hb := make([]int64, nd)
	solo := make([]int64, len(eq.solos))
	var recSolo func(k int) bool
	recSolo = func(k int) bool {
		if k == len(eq.solos) {
			sum := int64(0)
			for i := 0; i < nd; i++ {
				sum += eq.ca[i]*ha[i] - eq.cb[i]*hb[i]
			}
			for i, s := range eq.solos {
				sum += s.coeff * solo[i]
			}
			return sum == eq.rhs
		}
		for v := *eq.solos[k].lo; v <= *eq.solos[k].hi; v++ {
			solo[k] = v
			if recSolo(k + 1) {
				return true
			}
		}
		return false
	}
	var rec func(dim int) bool
	rec = func(dim int) bool {
		if dim == nd {
			return recSolo(0)
		}
		for a := int64(0); a <= *eq.ubA[dim]; a++ {
			if !okMod(dim, 0, a) {
				continue
			}
			for b := int64(0); b <= *eq.ubB[dim]; b++ {
				if !okMod(dim, 1, b) {
					continue
				}
				switch psi[dim] {
				case DirLT:
					if !(a < b) {
						continue
					}
				case DirEQ:
					if a != b {
						continue
					}
				case DirGT:
					if !(a > b) {
						continue
					}
				}
				ha[dim], hb[dim] = a, b
				if rec(dim + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0), true
}

// deltaSolveUnified is the distance-space enumerator behind deltaSolve
// and the composite-subscript path: optional direction constraints
// (psi) and optional per-dimension distance residues (dmods: dim ->
// (residue, modulus)). The equation reads Σ c_k·(hA_k - hB_k) = rhs, so
// over distances d = hB - hA the target is -rhs.
func (t *tester) deltaSolveUnified(eq *equation, psi []Dir, dmods map[int][2]int) (feasible bool, dist []int64, unique bool) {
	nd := len(eq.ca)
	d := make([]int64, nd)
	var rec func(dim int, acc int64)
	rec = func(dim int, acc int64) {
		if dim == nd {
			if acc != -eq.rhs {
				return
			}
			if !feasible {
				feasible = true
				dist = append([]int64(nil), d...)
				unique = true
				return
			}
			for i := range d {
				if d[i] != dist[i] {
					unique = false
				}
			}
			return
		}
		lo, hi := -*eq.ubA[dim], *eq.ubB[dim]
		if psi != nil {
			switch psi[dim] {
			case DirLT:
				if lo < 1 {
					lo = 1
				}
			case DirEQ:
				lo, hi = 0, 0
			case DirGT:
				if hi > -1 {
					hi = -1
				}
			}
		}
		for v := lo; v <= hi; v++ {
			if m, ok := dmods[dim]; ok {
				if int((v%int64(m[1])+int64(m[1]))%int64(m[1])) != m[0] {
					continue
				}
			}
			d[dim] = v
			rec(dim+1, acc+eq.ca[dim]*v)
		}
	}
	rec(0, 0)
	return feasible, dist, unique && dist != nil
}
