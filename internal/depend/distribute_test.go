package depend

import (
	"testing"
)

func piBlocks(t *testing.T, src, label string) []PiBlock {
	t.Helper()
	r := analyze(t, src)
	l := r.Analysis.LoopByLabel(label)
	if l == nil {
		t.Fatalf("loop %s missing", label)
	}
	return PiBlocks(r, l)
}

// TestDistributeForward: a forward-carried dependence splits into two
// ordered π-blocks — the loop distributes.
func TestDistributeForward(t *testing.T) {
	blocks := piBlocks(t, `
L1: for i = 1 to 40 {
    a[i] = b[i] + 1
    c[i] = a[i - 1] * 2
}
`, "L1")
	if len(blocks) != 2 {
		t.Fatalf("π-blocks = %d, want 2", len(blocks))
	}
	// The a-producing block must come first.
	if blocks[0].Stores[0].Var != "a" || blocks[1].Stores[0].Var != "c" {
		t.Errorf("order = %s, %s; want a then c", blocks[0].Stores[0].Var, blocks[1].Stores[0].Var)
	}
	for _, b := range blocks {
		if b.Cyclic {
			t.Errorf("no cycles expected: %+v", b)
		}
	}
}

// TestDistributeCycle: mutual recurrences fuse into one cyclic π-block.
func TestDistributeCycle(t *testing.T) {
	blocks := piBlocks(t, `
L1: for i = 1 to 40 {
    a[i] = b[i - 1]
    b[i] = a[i - 1]
}
`, "L1")
	if len(blocks) != 1 {
		t.Fatalf("π-blocks = %d, want 1 fused block", len(blocks))
	}
	if !blocks[0].Cyclic || len(blocks[0].Stores) != 2 {
		t.Errorf("block = %+v, want cyclic with both stores", blocks[0])
	}
}

// TestDistributeScalarRecurrence: a store tied to a scalar sum stays
// separate from an unrelated store, but carries its own cycle.
func TestDistributeScalarRecurrence(t *testing.T) {
	blocks := piBlocks(t, `
s = 0
L1: for i = 1 to 40 {
    s = s + a[i]
    b[i] = a[i]
    c[i] = s
}
`, "L1")
	if len(blocks) != 2 {
		t.Fatalf("π-blocks = %d, want 2:\n%+v", len(blocks), blocks)
	}
	// b is independent; c consumes the s recurrence (self edge).
	var bBlock, cBlock *PiBlock
	for i := range blocks {
		for _, st := range blocks[i].Stores {
			switch st.Var {
			case "b":
				bBlock = &blocks[i]
			case "c":
				cBlock = &blocks[i]
			}
		}
	}
	if bBlock == nil || cBlock == nil || bBlock == cBlock {
		t.Fatalf("blocks = %+v", blocks)
	}
	if bBlock.Cyclic {
		t.Error("b's block must be acyclic (vectorizable)")
	}
	if !cBlock.Cyclic {
		t.Error("c's block carries the s recurrence")
	}
}

// TestDistributeSelfRecurrence: a[i] = a[i-1] is one cyclic block.
func TestDistributeSelfRecurrence(t *testing.T) {
	blocks := piBlocks(t, `
L1: for i = 1 to 40 {
    a[i] = a[i - 1] + 1
}
`, "L1")
	if len(blocks) != 1 || !blocks[0].Cyclic {
		t.Fatalf("blocks = %+v, want one cyclic", blocks)
	}
}

// TestDistributeIndependent: unrelated stores split fully, none cyclic,
// and the loop counter does not serialize them.
func TestDistributeIndependent(t *testing.T) {
	blocks := piBlocks(t, `
L1: for i = 1 to 40 {
    a[i] = i
    b[i] = 2 * i
    c[i] = 3 * i
}
`, "L1")
	if len(blocks) != 3 {
		t.Fatalf("π-blocks = %d, want 3:\n%+v", len(blocks), blocks)
	}
	for _, b := range blocks {
		if b.Cyclic {
			t.Errorf("counter-only block must be acyclic: %+v", b)
		}
	}
}

// TestDistributeAntiOrder: an anti dependence (read before write in a
// later iteration... here loop-independent ordering) still orders the
// blocks source-first.
func TestDistributeAntiOrder(t *testing.T) {
	blocks := piBlocks(t, `
L1: for i = 1 to 40 {
    b[i] = a[i + 1]
    a[i] = c[i]
}
`, "L1")
	if len(blocks) != 2 {
		t.Fatalf("π-blocks = %d, want 2", len(blocks))
	}
	// The read of a (into b) must stay before the write of a.
	if blocks[0].Stores[0].Var != "b" || blocks[1].Stores[0].Var != "a" {
		t.Errorf("order = %s then %s, want b then a",
			blocks[0].Stores[0].Var, blocks[1].Stores[0].Var)
	}
}

// TestDistributeEmpty: a loop without stores yields no blocks.
func TestDistributeEmpty(t *testing.T) {
	blocks := piBlocks(t, `
s = 0
L1: for i = 1 to 40 {
    s = s + i
}
b[1] = s
`, "L1")
	if blocks != nil {
		t.Errorf("blocks = %+v, want none", blocks)
	}
}
