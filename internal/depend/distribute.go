package depend

import (
	"slices"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/scc"
)

// Loop distribution — the first transformation the paper's introduction
// motivates ("loop distribution and loop interchanging") — partitions a
// loop's statements into π-blocks: the strongly connected components of
// the statement-level dependence graph. Components can be split into
// separate loops and run in their topological order; a component of one
// store with no self dependence is a parallel/vector candidate.
//
// Statements here are the loop's array stores; each store's backward
// slice (the in-loop values feeding it) defines what it reads. Edges
// come from two sources:
//
//   - memory dependences between accesses of two slices (from the §6
//     tester, including the extended-class results);
//   - loop-carried scalar recurrences: a unit that consumes a header
//     φ of the loop depends on every unit that computes the value
//     carried into it.

// PiBlock is one strongly connected component of the statement
// dependence graph.
type PiBlock struct {
	// Stores are the component's array stores, in program order.
	Stores []*ir.Value
	// Cyclic reports whether the component contains a dependence cycle
	// (it must stay a loop; acyclic blocks of one store vectorize).
	Cyclic bool
}

// PiScratch is caller-owned working storage for PiBlocksScratch. The
// value-indexed tables are gen-stamped: entries are live only while
// their stamp matches, so reuse across calls is a counter bump, not a
// clear, and a table recycled from another function's run can never
// leak slice membership.
type PiScratch struct {
	// memberGen stamps members[id] as valid for the current call;
	// members[id] lists the units whose backward slice contains value
	// id, appended in unit order (so it is always sorted).
	memberGen []uint32
	members   [][]int32
	callGen   uint32

	// visitGen stamps one backward-slice walk (bumped per unit).
	visitGen []uint32
	walkGen  uint32

	stores  []*ir.Value
	edges   []bool // n×n adjacency matrix, rebuilt per call
	succOff []int32
	succBuf []int // flat successor lists; frames alias subslices, so one buffer
	scc     scc.Scratch
}

func (s *PiScratch) grow(n int) {
	if n <= len(s.memberGen) {
		return
	}
	if n < 2*len(s.memberGen) {
		n = 2 * len(s.memberGen)
	}
	memberGen := make([]uint32, n)
	members := make([][]int32, n)
	visitGen := make([]uint32, n)
	copy(memberGen, s.memberGen)
	copy(members, s.members)
	copy(visitGen, s.visitGen)
	s.memberGen, s.members, s.visitGen = memberGen, members, visitGen
}

// unitsOf returns the units whose slice contains v, valid for this call.
func (s *PiScratch) unitsOf(v *ir.Value) []int32 {
	if v.ID >= len(s.memberGen) || s.memberGen[v.ID] != s.callGen {
		return nil
	}
	return s.members[v.ID]
}

// PiBlocks partitions loop l's stores into π-blocks, returned in a
// legal execution order (every dependence points forward or stays
// within a block).
func PiBlocks(r *Result, l *loops.Loop) []PiBlock {
	return PiBlocksScratch(r, l, &PiScratch{})
}

// PiBlocksScratch is PiBlocks with caller-owned working storage, for
// hot paths that partition many loops (the reporting layer walks every
// loop of every corpus program). The returned PiBlock.Stores slices are
// freshly allocated and remain valid; only s's internals are recycled.
func PiBlocksScratch(r *Result, l *loops.Loop, s *PiScratch) []PiBlock {
	f := r.Analysis.SSA.Func

	// Units: the stores inside l, in program order (value IDs are minted
	// in program order, so sorting by ID restores it regardless of the
	// block iteration order).
	stores := s.stores[:0]
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpStoreElem {
				stores = append(stores, v)
			}
		}
	}
	s.stores = stores
	if len(stores) == 0 {
		return nil
	}
	slices.SortFunc(stores, ir.ByID)

	s.grow(f.NumValues())
	s.callGen++

	// Backward slices, restricted to values inside l. Walk iteratively
	// with the touched-stack doubling as the DFS stack.
	for i, st := range stores {
		s.walkGen++
		stack := []*ir.Value{st}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v.ID < len(s.visitGen) && s.visitGen[v.ID] == s.walkGen {
				continue
			}
			if !l.ContainsValue(v) {
				continue
			}
			if v.ID >= len(s.visitGen) {
				s.grow(v.ID + 1)
			}
			s.visitGen[v.ID] = s.walkGen
			if s.memberGen[v.ID] != s.callGen {
				s.memberGen[v.ID] = s.callGen
				s.members[v.ID] = s.members[v.ID][:0]
			}
			s.members[v.ID] = append(s.members[v.ID], int32(i))
			// A header φ is what the unit *reads this iteration*; its
			// carried argument belongs to whoever computes it (the
			// producer/consumer edges below), not to this slice —
			// walking through it would drag the whole recurrence,
			// including the loop counter's latch, into every unit.
			if v.Op == ir.OpPhi && v.Block == l.Header {
				continue
			}
			stack = append(stack, v.Args...)
		}
	}

	// Edges, as a dense n×n matrix.
	n := len(stores)
	if cap(s.edges) < n*n {
		s.edges = make([]bool, n*n)
	}
	edges := s.edges[:n*n]
	for i := range edges {
		edges[i] = false
	}
	addEdge := func(a, b int32) { edges[int(a)*n+int(b)] = true }

	// Memory dependences: src unit(s) -> dst unit(s).
	for _, d := range r.Deps {
		if d.Kind == Input {
			continue
		}
		if !insideLoop(l, d.Src) || !insideLoop(l, d.Dst) {
			continue
		}
		for _, a := range s.unitsOf(d.Src.Value) {
			for _, b := range s.unitsOf(d.Dst.Value) {
				addEdge(a, b)
			}
		}
	}

	// Carried scalar recurrences through l's header φs.
	for _, v := range l.Header.Values {
		if v.Op != ir.OpPhi {
			continue
		}
		_, carried := headerPhiSplit(l, v)
		consumers := s.unitsOf(v)
		for _, c := range carried {
			for _, p := range s.unitsOf(c) {
				for _, q := range consumers {
					addEdge(p, q)
				}
			}
		}
	}

	// Flatten the matrix into offset-indexed successor lists (rows scan
	// ascending, so each list is already sorted and duplicate-free).
	// Tarjan's frames hold succ results live across nested descents, so
	// the lists must be stable subslices of one buffer, not a reused row.
	if cap(s.succOff) < n+1 {
		s.succOff = make([]int32, n+1)
	}
	succOff := s.succOff[:n+1]
	succBuf := s.succBuf[:0]
	for i := 0; i < n; i++ {
		succOff[i] = int32(len(succBuf))
		for j := 0; j < n; j++ {
			if edges[i*n+j] {
				succBuf = append(succBuf, j)
			}
		}
	}
	succOff[n] = int32(len(succBuf))
	s.succBuf = succBuf

	// π-blocks: SCCs, popped successors-first; reverse for execution
	// order (sources before sinks).
	comps := scc.ComponentsScratch(n, func(i int) []int {
		return succBuf[succOff[i]:succOff[i+1]]
	}, &s.scc)
	var blocks []PiBlock
	for i := len(comps) - 1; i >= 0; i-- {
		comp := comps[i]
		slices.Sort(comp)
		pb := PiBlock{Stores: make([]*ir.Value, 0, len(comp))}
		for _, u := range comp {
			pb.Stores = append(pb.Stores, stores[u])
		}
		pb.Cyclic = len(comp) > 1 || edges[comp[0]*n+comp[0]]
		blocks = append(blocks, pb)
	}
	return blocks
}

// insideLoop reports whether the access sits anywhere inside l.
func insideLoop(l *loops.Loop, ac *Access) bool {
	for q := ac.Loop; q != nil; q = q.Parent {
		if q == l {
			return true
		}
	}
	return false
}

// headerPhiSplit separates a header φ's entry and carried arguments.
func headerPhiSplit(l *loops.Loop, phi *ir.Value) (entry *ir.Value, carried []*ir.Value) {
	for i, arg := range phi.Args {
		if l.Contains(phi.Block.Preds[i]) {
			carried = append(carried, arg)
		} else {
			entry = arg
		}
	}
	return entry, carried
}
