package depend

import (
	"sort"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/scc"
)

// Loop distribution — the first transformation the paper's introduction
// motivates ("loop distribution and loop interchanging") — partitions a
// loop's statements into π-blocks: the strongly connected components of
// the statement-level dependence graph. Components can be split into
// separate loops and run in their topological order; a component of one
// store with no self dependence is a parallel/vector candidate.
//
// Statements here are the loop's array stores; each store's backward
// slice (the in-loop values feeding it) defines what it reads. Edges
// come from two sources:
//
//   - memory dependences between accesses of two slices (from the §6
//     tester, including the extended-class results);
//   - loop-carried scalar recurrences: a unit that consumes a header
//     φ of the loop depends on every unit that computes the value
//     carried into it.

// PiBlock is one strongly connected component of the statement
// dependence graph.
type PiBlock struct {
	// Stores are the component's array stores, in program order.
	Stores []*ir.Value
	// Cyclic reports whether the component contains a dependence cycle
	// (it must stay a loop; acyclic blocks of one store vectorize).
	Cyclic bool
}

// PiBlocks partitions loop l's stores into π-blocks, returned in a
// legal execution order (every dependence points forward or stays
// within a block).
func PiBlocks(r *Result, l *loops.Loop) []PiBlock {
	f := r.Analysis.SSA.Func

	// Units: the stores inside l, in program order.
	var stores []*ir.Value
	for _, b := range f.Blocks {
		if !l.Contains(b) {
			continue
		}
		for _, v := range b.Values {
			if v.Op == ir.OpStoreElem {
				stores = append(stores, v)
			}
		}
	}
	if len(stores) == 0 {
		return nil
	}
	unitOf := map[*ir.Value]int{}
	for i, st := range stores {
		unitOf[st] = i
	}

	// Backward slices, restricted to values inside l.
	slices := make([]map[*ir.Value]bool, len(stores))
	for i, st := range stores {
		slices[i] = map[*ir.Value]bool{}
		var walk func(v *ir.Value)
		walk = func(v *ir.Value) {
			if slices[i][v] || !l.ContainsValue(v) {
				return
			}
			slices[i][v] = true
			// A header φ is what the unit *reads this iteration*; its
			// carried argument belongs to whoever computes it (the
			// producer/consumer edges below), not to this slice —
			// walking through it would drag the whole recurrence,
			// including the loop counter's latch, into every unit.
			if v.Op == ir.OpPhi && v.Block == l.Header {
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		}
		walk(st)
	}
	inSlice := func(unit int, v *ir.Value) bool { return slices[unit][v] }

	// Edges.
	edges := make([]map[int]bool, len(stores))
	for i := range edges {
		edges[i] = map[int]bool{}
	}
	addEdge := func(a, b int) { edges[a][b] = true }

	// Memory dependences: src unit(s) -> dst unit(s).
	unitsTouching := func(v *ir.Value) []int {
		var out []int
		for i := range stores {
			if inSlice(i, v) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, d := range r.Deps {
		if d.Kind == Input {
			continue
		}
		if !insideLoop(l, d.Src) || !insideLoop(l, d.Dst) {
			continue
		}
		for _, a := range unitsTouching(d.Src.Value) {
			for _, b := range unitsTouching(d.Dst.Value) {
				addEdge(a, b)
			}
		}
	}

	// Carried scalar recurrences through l's header φs.
	for _, v := range l.Header.Values {
		if v.Op != ir.OpPhi {
			continue
		}
		_, carried := headerPhiSplit(l, v)
		var producers, consumers []int
		for i := range stores {
			if inSlice(i, v) {
				consumers = append(consumers, i)
			}
			for _, c := range carried {
				if inSlice(i, c) {
					producers = append(producers, i)
					break
				}
			}
		}
		for _, p := range producers {
			for _, c := range consumers {
				addEdge(p, c)
			}
		}
	}

	// π-blocks: SCCs, popped successors-first; reverse for execution
	// order (sources before sinks).
	comps := scc.Components(len(stores), func(i int) []int {
		out := make([]int, 0, len(edges[i]))
		for j := range edges[i] {
			out = append(out, j)
		}
		sort.Ints(out)
		return out
	})
	var blocks []PiBlock
	for i := len(comps) - 1; i >= 0; i-- {
		comp := comps[i]
		sort.Ints(comp)
		pb := PiBlock{}
		for _, u := range comp {
			pb.Stores = append(pb.Stores, stores[u])
		}
		pb.Cyclic = len(comp) > 1 || edges[comp[0]][comp[0]]
		blocks = append(blocks, pb)
	}
	return blocks
}

// insideLoop reports whether the access sits anywhere inside l.
func insideLoop(l *loops.Loop, ac *Access) bool {
	for q := ac.Loop; q != nil; q = q.Parent {
		if q == l {
			return true
		}
	}
	return false
}

// headerPhiSplit separates a header φ's entry and carried arguments.
func headerPhiSplit(l *loops.Loop, phi *ir.Value) (entry *ir.Value, carried []*ir.Value) {
	for i, arg := range phi.Args {
		if l.Contains(phi.Block.Preds[i]) {
			carried = append(carried, arg)
		} else {
			entry = arg
		}
	}
	return entry, carried
}
