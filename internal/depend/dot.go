package depend

import (
	"fmt"
	"slices"
	"strings"
)

// DOT renders the dependence graph in Graphviz syntax: one node per
// array access (labelled with the array and subscript), one edge per
// dependence, annotated with kind, direction vector, distance, and the
// §6 extensions (wrap-around flags, periodic residues).
//
//	depclass -dot prog | dot -Tsvg > deps.svg
func (r *Result) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph dependences {\n")
	sb.WriteString("    rankdir=LR;\n")
	sb.WriteString("    node [shape=box, fontname=\"monospace\"];\n")

	// Nodes, deterministic order.
	accs := append([]*Access(nil), r.Accesses...)
	slices.SortFunc(accs, byOrder)
	id := map[*Access]string{}
	for i, ac := range accs {
		name := fmt.Sprintf("n%d", i)
		id[ac] = name
		kind := "read"
		shape := "box"
		if ac.Write {
			kind = "write"
			shape = "box, style=bold"
		}
		loop := ""
		if ac.Loop != nil {
			loop = " in " + ac.Loop.Label
		}
		fmt.Fprintf(&sb, "    %s [label=\"%s[%s]\\n%s%s\", shape=%s];\n",
			name, ac.Array, ac.Value.Args[0], kind, loop, shape)
	}

	colors := map[Kind]string{
		Flow:   "black",
		Anti:   "red",
		Output: "blue",
		Input:  "gray",
	}
	for _, d := range r.Deps {
		label := d.Kind.String()
		if len(d.Dirs) > 0 {
			parts := make([]string, len(d.Dirs))
			for i, dir := range d.Dirs {
				parts[i] = dir.String()
			}
			label += " (" + strings.Join(parts, ",") + ")"
		}
		if d.Distance != nil {
			parts := make([]string, len(d.Distance))
			for i, v := range d.Distance {
				parts[i] = fmt.Sprintf("%d", v)
			}
			label += " d=(" + strings.Join(parts, ",") + ")"
		}
		if d.Modulus > 1 {
			label += fmt.Sprintf(" mod %d ≡ %d", d.Modulus, d.Residue)
		}
		if d.AfterIterations > 0 {
			label += fmt.Sprintf(" after %d", d.AfterIterations)
		}
		style := ""
		if d.Method == "assumed" {
			style = ", style=dashed"
		}
		fmt.Fprintf(&sb, "    %s -> %s [label=\"%s\", color=%s%s];\n",
			id[d.Src], id[d.Dst], label, colors[d.Kind], style)
	}
	sb.WriteString("}\n")
	return sb.String()
}
