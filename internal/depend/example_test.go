package depend_test

import (
	"fmt"

	"beyondiv/internal/depend"
	"beyondiv/internal/iv"
)

// §6's first example: the dependence equation from induction
// expressions, decided exactly.
func ExampleAnalyze() {
	a, err := iv.AnalyzeProgram(`
L1: for i = 1 to 50 {
    a[i] = a[i - 3] + 1
}
`)
	if err != nil {
		panic(err)
	}
	r := depend.Analyze(a, depend.Options{})
	for _, d := range r.Deps {
		fmt.Printf("%s: %s -> %s, direction (%s), distance %v\n",
			d.Kind, d.Src.Array, d.Dst.Array, d.Dirs[0], d.Distance)
	}
	// Output:
	// flow: a -> a, direction (<), distance [3]
}

// Transformation legality from direction vectors (§6.1).
func ExampleParallelizable() {
	a, err := iv.AnalyzeProgram(`
L1: for i = 1 to 50 {
    a[i] = a[i] * 2
}
L2: for i = 1 to 50 {
    b[i] = b[i - 1] + 1
}
`)
	if err != nil {
		panic(err)
	}
	r := depend.Analyze(a, depend.Options{})
	for _, label := range []string{"L1", "L2"} {
		ok, _ := depend.Parallelizable(r, a.LoopByLabel(label))
		fmt.Printf("%s parallelizable: %v\n", label, ok)
	}
	// Output:
	// L1 parallelizable: true
	// L2 parallelizable: false
}

// Loop distribution π-blocks: the statement dependence graph condensed.
func ExamplePiBlocks() {
	a, err := iv.AnalyzeProgram(`
L1: for i = 1 to 50 {
    a[i] = b[i] + 1
    c[i] = a[i - 1] * 2
}
`)
	if err != nil {
		panic(err)
	}
	r := depend.Analyze(a, depend.Options{})
	for i, blk := range depend.PiBlocks(r, a.LoopByLabel("L1")) {
		fmt.Printf("block %d:", i+1)
		for _, st := range blk.Stores {
			fmt.Printf(" %s", st.Var)
		}
		fmt.Printf(" (cyclic=%v)\n", blk.Cyclic)
	}
	// Output:
	// block 1: a (cyclic=false)
	// block 2: c (cyclic=false)
}
