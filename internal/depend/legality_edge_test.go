// Edge cases of the unimodular legality machinery: empty distance
// lists, int64 overflow at the safemath boundaries, and the §6.1
// regression where loop normalization manufactures an
// interchange-illegal (<,>) dependence out of a legal nest.
package depend

import (
	"math"
	"testing"
)

// TestUnimodularLegalEmptyDistances: no dependences constrain nothing —
// every transformation of an empty list is legal, and the skew search
// returns the identity-cost f=0 interchange immediately.
func TestUnimodularLegalEmptyDistances(t *testing.T) {
	if !UnimodularLegal(Interchange, nil) {
		t.Error("interchange of a dependence-free nest must be legal")
	}
	if !UnimodularLegal(Skew(3), [][2]int64{}) {
		t.Error("skew of a dependence-free nest must be legal")
	}
	tm, ok := FindSkewedInterchange(nil, 8)
	if !ok || tm != Interchange {
		t.Errorf("skew search on no constraints = %v (%v), want plain interchange", tm, ok)
	}
}

// TestApplyOverflowBoundaries: products and sums that cross the int64
// range must report !ok, and values that just fit must not.
func TestApplyOverflowBoundaries(t *testing.T) {
	// Sum overflow: both components at MaxInt64 under a skew that adds
	// them.
	if _, ok := Skew(1).Apply([2]int64{math.MaxInt64, math.MaxInt64}); ok {
		t.Error("MaxInt64 + MaxInt64 must overflow")
	}
	// Product overflow: a large skew factor times a large distance.
	if _, ok := Skew(math.MaxInt64).Apply([2]int64{2, 0}); ok {
		t.Error("MaxInt64 * 2 must overflow")
	}
	// Exactly representable: MaxInt64 * 1 + 0.
	got, ok := Skew(1).Apply([2]int64{math.MaxInt64, 0})
	if !ok || got != [2]int64{math.MaxInt64, math.MaxInt64} {
		t.Errorf("Apply at the boundary = %v (%v), want exact (MaxInt64, MaxInt64)", got, ok)
	}
	// MinInt64 negation path: interchange just permutes, so it stays
	// representable...
	got, ok = Interchange.Apply([2]int64{math.MinInt64, 1})
	if !ok || got != [2]int64{1, math.MinInt64} {
		t.Errorf("interchange of MinInt64 = %v (%v)", got, ok)
	}
	// ...but a skew adding to it overflows downward.
	if _, ok := Skew(-1).Apply([2]int64{math.MaxInt64, math.MinInt64}); ok {
		t.Error("MinInt64 - MaxInt64 must overflow")
	}
}

// TestUnimodularLegalOverflowConservative: a wrapped transformed vector
// could look lexicographically positive; legality must reject instead
// of trusting it.
func TestUnimodularLegalOverflowConservative(t *testing.T) {
	dists := [][2]int64{{math.MaxInt64, math.MaxInt64}}
	if UnimodularLegal(Skew(1), dists) {
		t.Error("overflowing transformation must be conservatively illegal")
	}
	// The same matrix stays legal for ordinary distances.
	if !UnimodularLegal(Skew(1), [][2]int64{{1, -1}}) {
		t.Error("skew-by-1 of (1,-1) is (1,0): legal")
	}
	// And the search must skip overflowing factors, not crash on them:
	// for (MaxInt64, MinInt64), f=0 flips to lex-negative, f=1 sums to
	// -1, and every f ≥ 2 overflows the product — no legal repair.
	if tm, ok := FindSkewedInterchange([][2]int64{{math.MaxInt64, math.MinInt64}}, 8); ok {
		t.Errorf("search accepted %v; every factor is illegal or overflows", tm)
	}
}

// TestManufacturedInterchangeIllegal is the §6.1 regression: the
// distance-(1,-1) nest — a[i+1][j-1] read shape, the pattern loop
// normalization manufactures out of the paper's L23/L24 example — has
// directions (<,>), so plain interchange is illegal, but skewing by one
// then interchanging is the legal single transformation the section
// closes with.
func TestManufacturedInterchangeIllegal(t *testing.T) {
	r := analyze(t, `
L23: for i = 0 to 9 {
    L24: for j = 1 to 9 {
        a[i * 100 + j + 99] = a[i * 100 + j]
    }
}
`)
	outer := r.Analysis.LoopByLabel("L23")
	inner := r.Analysis.LoopByLabel("L24")

	ok, blocking := InterchangeLegal(r, outer, inner)
	if ok || len(blocking) == 0 {
		t.Fatalf("interchange of a (<,>) dependence must be illegal (blocking: %v)", blocking)
	}
	dists, okD := DistanceVectors2(r, outer, inner)
	if !okD || len(dists) == 0 {
		t.Fatalf("expected exact distances, got %v (%v)", dists, okD)
	}
	for _, d := range dists {
		if d != [2]int64{1, -1} {
			t.Errorf("distance %v, want (1,-1)", d)
		}
	}
	if UnimodularLegal(Interchange, dists) {
		t.Error("unimodular check must agree interchange is illegal")
	}
	tm, okT := FindSkewedInterchange(dists, 4)
	if !okT {
		t.Fatal("skew+interchange must repair (1,-1)")
	}
	if want := Skew(1).Mul(Interchange); tm != want {
		t.Errorf("repair = %v, want skew-by-1 then interchange %v", tm, want)
	}
	if d := tm.Det(); d != 1 && d != -1 {
		t.Errorf("repair determinant %d not unimodular", d)
	}
	for _, d := range dists {
		td, okA := tm.Apply(d)
		if !okA || !(td[0] > 0 || (td[0] == 0 && td[1] >= 0)) {
			t.Errorf("repaired distance %v -> %v not lex nonnegative", d, td)
		}
	}
}
