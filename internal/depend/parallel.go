package depend

import (
	"beyondiv/internal/obs"
	"beyondiv/internal/par"
	"beyondiv/internal/scratch"
)

// parMinPairs is the work-size threshold of the parallel pair sweep:
// below this many pairs the fan-out setup (pair materialization,
// worker testers, recorder forks) outweighs the tests themselves, so
// small programs always take the allocation-free sequential sweep.
const parMinPairs = 32

// parChunkPairs is the dispatch grain: workers claim pairs this many
// at a time, polling cancellation at each chunk boundary.
const parChunkPairs = 16

// testParallel runs the pair sweep concurrently, returning false
// (nothing done) when the fan-out is off or under the threshold.
//
// Determinism: the coordinator first prewarms, sequentially, every
// per-access memo the tests share — the postdominator tree, subscript
// classifications (with wrap-around unwrapping) and iteration forms.
// Those derivations are the only writes pair testing ever makes to
// the iv.Analysis (lazy exit-value caching) and to the accesses
// themselves, and they are observationally silent: no budget steps,
// no counters, no provenance events, in both paths. After the
// prewarm, workers only read shared state; each worker owns its own
// gen-stamped equation scratch (from a pooled arena), its own budget
// drawing the shared phase sub-pool, and a recorder fork. Per-pair
// results land in a slot indexed by the canonical pair enumeration —
// array name, then (a.Order, b.Order) — and merge back in that order,
// so Deps and Independent come out byte-identical to the sequential
// sweep.
func testParallel(r *Result, t *tester, byArray map[string][]*Access, arrays []string) bool {
	workers := t.opts.Workers
	if workers <= 1 {
		return false
	}
	n := 0
	for _, name := range arrays {
		list := byArray[name]
		for i := 0; i < len(list); i++ {
			for j := i; j < len(list); j++ {
				if !skipPair(list[i], list[j], i == j, t.opts) {
					n++
				}
			}
		}
	}
	if n < parMinPairs {
		return false
	}

	type pairJob struct{ a, b *Access }
	pairs := make([]pairJob, 0, n)
	for _, name := range arrays {
		list := byArray[name]
		for i := 0; i < len(list); i++ {
			for j := i; j < len(list); j++ {
				if !skipPair(list[i], list[j], i == j, t.opts) {
					pairs = append(pairs, pairJob{list[i], list[j]})
				}
			}
		}
	}

	// Sequential prewarm of everything lazily shared.
	t.postDom()
	for _, ac := range r.Accesses {
		t.subscriptClass(ac)
		t.formOf(ac, ac.unwrapped)
	}

	chunks := (n + parChunkPairs - 1) / parChunkPairs
	if workers > chunks {
		workers = chunks
	}

	// Per-worker testers: shared analysis, postdominators and options;
	// private budget, equation scratch and recorder. Worker 0 reuses
	// the run's own scratch (idle during the fan-out); the rest draw
	// arenas from the engine pool and return them when the sweep joins.
	lim := t.opts.Limits.ShareSteps()
	pool := t.opts.Scratch.Owner()
	wts := make([]*tester, workers)
	extra := make([]*scratch.Arena, workers)
	defer func() {
		for _, ar := range extra {
			pool.Put(ar)
		}
	}()
	for w := range wts {
		wopts := t.opts
		wopts.Limits = lim
		wopts.Scratch = nil
		wt := &tester{a: t.a, opts: wopts, budget: lim.Budget("depend"), pdom: t.pdom}
		if w == 0 {
			wt.scr = t.scr
		} else {
			ar := pool.Get() // nil pool yields a free-standing arena
			if pool != nil {
				extra[w] = ar
			}
			wt.scr = scratch.Get[dependScratch](&ar.Depend)
		}
		wts[w] = wt
	}

	reg := t.opts.Metrics
	reg.Inc("engine.par.depend.runs")
	reg.Add("engine.par.depend.pairs", int64(n))
	reg.SetGauge("engine.par.workers", int64(workers))

	deps := make([][]*Dependence, n)
	indep := make([]bool, n)
	par.Run("depend", workers, chunks, t.opts.Obs, func(w int, wrec *obs.Recorder, c int) {
		wt := wts[w]
		wt.opts.Obs = wrec
		if ce := lim.Cancelled("depend"); ce != nil {
			panic(ce)
		}
		lo := c * parChunkPairs
		hi := lo + parChunkPairs
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			deps[i], indep[i] = wt.testPair(pairs[i].a, pairs[i].b)
		}
	})

	for i := range pairs {
		r.Deps = append(r.Deps, deps[i]...)
		if indep[i] {
			r.Independent++
		}
	}
	return true
}
