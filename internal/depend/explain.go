package depend

import (
	"fmt"
	"strings"
)

// methodRules maps each decision-procedure name to the paper rule it
// implements, for per-edge provenance (Result.Explain).
var methodRules = map[string]string{
	"zero-trip":                "§5.2 trip count: an enclosing loop runs zero times",
	"periodic":                 "§6 periodic rings (L22): residue classes of the iteration distance",
	"monotonic-strict":         "§6/Figure 10 strictly monotonic subscripts: distinct iterations, distinct cells",
	"monotonic-strict-at-site": "§5.4 strict-at-site refinement via postdominance of the strict increment",
	"monotonic":                "§6/Figure 10 monotonic subscripts: plateaus reuse cells only forward",
	"delta":                    "[GKT91]-style delta test over the distance space",
	"gcd+banerjee":             "§6 affine equation: GCD divisibility plus Banerjee interval bounds",
	"exact":                    "§6 affine equation: exact enumeration of the bounded iteration space",
	"polynomial-exact":         "§6 ([Ban76]): exact evaluation of polynomial/geometric closed forms",
	"periodic+affine":          "§6 composite subscripts: ring-slot enumeration over the affine equation",
	"affine":                   "§6 affine dependence equation over iteration counters",
	"assumed":                  "conservative assumption: subscripts escape every test of §6",
}

// MethodRule names the paper rule behind a Dependence.Method (the method
// string itself when unmapped).
func MethodRule(method string) string {
	if r, ok := methodRules[method]; ok {
		return r
	}
	return method
}

// Explain renders the provenance of one dependence edge: the decision
// procedure (by paper rule), the dependence equation, the direction and
// distance information, and the classification chains of both
// subscripts as established by the induction-variable analysis.
func (r *Result) Explain(d *Dependence) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", d)
	fmt.Fprintf(&sb, "  rule: %s\n", MethodRule(d.Method))
	if d.Equation != "" {
		fmt.Fprintf(&sb, "  equation: %s\n", d.Equation)
	}
	if d.AfterIterations > 0 {
		fmt.Fprintf(&sb, "  holds only after %d iteration(s): a wrap-around subscript (§4.1) is still on its initial value before that\n",
			d.AfterIterations)
	}
	if d.Modulus > 1 {
		fmt.Fprintf(&sb, "  iteration distance ≡ %d (mod %d): the periodic ring (§4.2) collides only in these residue classes\n",
			d.Residue, d.Modulus)
	}
	for _, side := range []struct {
		label string
		ac    *Access
	}{{"src", d.Src}, {"dst", d.Dst}} {
		if side.ac.Loop == nil {
			fmt.Fprintf(&sb, "  %s subscript %s: outside any loop\n", side.label, side.ac.Value.Args[0])
			continue
		}
		fmt.Fprintf(&sb, "  %s subscript classification:\n", side.label)
		chain := r.Analysis.Explain(side.ac.Loop, side.ac.Value.Args[0])
		for _, line := range strings.Split(strings.TrimRight(chain, "\n"), "\n") {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}
	return sb.String()
}
