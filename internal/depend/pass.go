package depend

import (
	"beyondiv/internal/engine"
	"beyondiv/internal/iv"
)

// ArtifactKey is the engine State slot Pass fills; read it back with
// ResultOf.
const ArtifactKey = "depend"

// Pass contributes the §6 dependence analysis to an engine pipeline.
// It consumes the classification stored by iv.ClassifyPass and stores
// the *Result under ArtifactKey, rethreading the run's recorder,
// limits, and scratch arena like every engine pass.
func Pass(opts Options) engine.Pass {
	return engine.Pass{Name: "depend", Run: func(st *engine.State) error {
		o := opts
		o.Obs = st.Obs()
		o.Limits = st.Lim()
		o.Scratch = st.Scratch()
		o.Workers = st.Par()
		o.Metrics = st.Metrics()
		st.Put(ArtifactKey, Analyze(iv.AnalysisOf(st), o))
		return nil
	}}
}

// ResultOf returns the dependence result a Pass stored in st, or nil
// when the pass has not run.
func ResultOf(st *engine.State) *Result {
	r, _ := st.Artifact(ArtifactKey).(*Result)
	return r
}
