package parse

import (
	"beyondiv/internal/ast"
	"beyondiv/internal/token"
)

// parseScratch is the front end's per-run reusable state, pooled on
// the engine arena: the scan token buffer and the statement stack that
// nested blocks share. Both only live for the duration of one parse —
// tokens alias the source text and statements are carved into the
// run's own slab before the buffer is popped — so recycling their
// capacity across runs is safe.
type parseScratch struct {
	toks    []token.Token
	stmtBuf []ast.Stmt
}

// nodeSlab is the parser's AST node allocator: one chunk per node
// kind, carved sequentially, with chunks doubled by abandonment (never
// copied) so previously carved pointers stay valid. The slab is fresh
// per run — the AST escapes into the cached, shared State, so its
// backing memory can never be recycled — but it turns one heap
// allocation per node into one per chunk.
type nodeSlab struct {
	bin    []ast.Bin
	unary  []ast.Unary
	ident  []ast.Ident
	num    []ast.Num
	index  []ast.Index
	assign []ast.Assign
	forS   []ast.For
	loop   []ast.Loop
	while  []ast.While
	ifS    []ast.If
	exit   []ast.Exit
	block  []ast.Block

	// stmts backs every Block.Stmts (and File.Stmts) slice. Carved
	// slices are capacity-clamped so an append through one can never
	// overwrite its neighbor.
	stmts []ast.Stmt
}

// carve returns a pointer to a fresh zero-valued node from the chunk,
// growing by replacing a full chunk with a larger empty one (the full
// chunk stays alive through the pointers already carved from it).
func carve[T any](chunk *[]T) *T {
	s := *chunk
	if len(s) == cap(s) {
		n := 2 * cap(s)
		if n < 8 {
			n = 8
		}
		s = make([]T, 0, n)
	}
	s = s[:len(s)+1]
	*chunk = s
	return &s[len(s)-1]
}

// stmtSlice copies one block's statements (the top of the shared
// statement stack) into the stmts chunk and returns a full-slice-
// expression-clamped view of them; nil for an empty block.
func (sl *nodeSlab) stmtSlice(src []ast.Stmt) []ast.Stmt {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(sl.stmts)-len(sl.stmts) < n {
		c := 2 * cap(sl.stmts)
		if c < 16 {
			c = 16
		}
		if c < n {
			c = n
		}
		sl.stmts = make([]ast.Stmt, 0, c)
	}
	start := len(sl.stmts)
	sl.stmts = append(sl.stmts, src...)
	return sl.stmts[start : start+n : start+n]
}
