package parse

import (
	"strings"
	"testing"
	"testing/quick"

	"beyondiv/internal/ast"
	"beyondiv/internal/progen"
	"beyondiv/internal/token"
)

func TestAssignments(t *testing.T) {
	f, err := File("i = 0\nj = i + 1\na[i] = a[i-1] * 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stmts) != 3 {
		t.Fatalf("got %d statements, want 3", len(f.Stmts))
	}
	a2, ok := f.Stmts[2].(*ast.Assign)
	if !ok {
		t.Fatalf("stmt 2 is %T", f.Stmts[2])
	}
	if _, ok := a2.LHS.(*ast.Index); !ok {
		t.Errorf("LHS is %T, want *ast.Index", a2.LHS)
	}
}

func TestForLoop(t *testing.T) {
	f, err := File("L1: for i = 1 to n by 2 { a[i] = 0 }\n")
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := f.Stmts[0].(*ast.For)
	if !ok {
		t.Fatalf("stmt is %T", f.Stmts[0])
	}
	if fs.Label != "L1" || fs.Var.Name != "i" || fs.Step == nil {
		t.Errorf("for = %+v", fs)
	}
	if len(fs.Body.Stmts) != 1 {
		t.Errorf("body has %d stmts", len(fs.Body.Stmts))
	}
}

func TestForWithoutBy(t *testing.T) {
	f, err := File("for i = 1 to 10 { x = x + i }\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Stmts[0].(*ast.For).Step != nil {
		t.Error("Step should be nil when by is omitted")
	}
}

func TestLoopExit(t *testing.T) {
	src := `
i = 0
L2: loop {
    i = i + 1
    if i > 100 { exit }
}
`
	f, err := File(src)
	if err != nil {
		t.Fatal(err)
	}
	lp, ok := f.Stmts[1].(*ast.Loop)
	if !ok {
		t.Fatalf("stmt 1 is %T", f.Stmts[1])
	}
	if lp.Label != "L2" {
		t.Errorf("label = %q", lp.Label)
	}
	ifs, ok := lp.Body.Stmts[1].(*ast.If)
	if !ok {
		t.Fatalf("body stmt 1 is %T", lp.Body.Stmts[1])
	}
	if _, ok := ifs.Then.Stmts[0].(*ast.Exit); !ok {
		t.Errorf("then stmt is %T, want Exit", ifs.Then.Stmts[0])
	}
}

func TestWhile(t *testing.T) {
	f, err := File("while i < n { i = i * 2 }\n")
	if err != nil {
		t.Fatal(err)
	}
	ws, ok := f.Stmts[0].(*ast.While)
	if !ok {
		t.Fatalf("stmt is %T", f.Stmts[0])
	}
	cond, ok := ws.Cond.(*ast.Bin)
	if !ok || cond.Op != token.LT {
		t.Errorf("cond = %v", ws.Cond)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
if x > 0 {
    k = k + 1
} else if x < 0 {
    k = k + 2
} else {
    k = k + 3
}
`
	f, err := File(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.Stmts[0].(*ast.If)
	if ifs.Else == nil {
		t.Fatal("else missing")
	}
	nested, ok := ifs.Else.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("else stmt is %T, want nested If", ifs.Else.Stmts[0])
	}
	if nested.Else == nil {
		t.Error("final else missing")
	}
}

func TestPrecedence(t *testing.T) {
	f, err := File("x = 1 + 2 * 3 ** 2\n")
	if err != nil {
		t.Fatal(err)
	}
	rhs := f.Stmts[0].(*ast.Assign).RHS
	// Expect 1 + (2 * (3 ** 2)).
	add, ok := rhs.(*ast.Bin)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("top = %v", ast.ExprString(rhs))
	}
	mul, ok := add.Y.(*ast.Bin)
	if !ok || mul.Op != token.STAR {
		t.Fatalf("right of + = %v", ast.ExprString(add.Y))
	}
	pow, ok := mul.Y.(*ast.Bin)
	if !ok || pow.Op != token.POW {
		t.Fatalf("right of * = %v", ast.ExprString(mul.Y))
	}
}

func TestPowRightAssociative(t *testing.T) {
	f, err := File("x = 2 ** 3 ** 2\n")
	if err != nil {
		t.Fatal(err)
	}
	top := f.Stmts[0].(*ast.Assign).RHS.(*ast.Bin)
	inner, ok := top.Y.(*ast.Bin)
	if !ok || inner.Op != token.POW {
		t.Errorf("2**3**2 should parse as 2**(3**2), got %s", ast.ExprString(top))
	}
}

func TestUnaryMinusAndParens(t *testing.T) {
	f, err := File("x = -(a + b) * -c\n")
	if err != nil {
		t.Fatal(err)
	}
	got := ast.ExprString(f.Stmts[0].(*ast.Assign).RHS)
	if got != "-(a + b) * -c" {
		t.Errorf("printed = %q", got)
	}
}

func TestSingleLineBlocks(t *testing.T) {
	// '}' terminates the last statement without an explicit semicolon.
	if _, err := File("loop { i = i + 1; if i > 3 { exit } }\n"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"for i = 1 { }",               // missing to
		"x = ",                        // missing operand
		"if x { }",                    // condition without relop
		"loop { i = 1",                // unterminated block
		"L: x = 1",                    // label on non-loop
		"x = 1 +* 2",                  // bad operator sequence
		"exit exit",                   // missing separator
		"while i < n j = 2",           // missing brace
		"a[i = 3",                     // missing bracket
		"for i = 1 to n by { x = 1 }", // missing step expr
	}
	for _, src := range cases {
		if _, err := File(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestRoundTrip checks that printing and reparsing is a fixed point.
func TestRoundTrip(t *testing.T) {
	src := `
n = 100
j = n
L2: loop {
    i = j + c
    j = i + k
    if j > n { exit }
}
for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    } else {
        k = k + 2
    }
}
while k < n {
    k = k * 2 + 1
}
`
	f1, err := File(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := f1.String()
	f2, err := File(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	if f2.String() != printed {
		t.Errorf("print/parse not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, f2.String())
	}
}

// TestQuickRandomProgramsRoundTrip generates random programs from a
// small grammar and verifies print→parse→print stability.
func TestQuickRandomProgramsRoundTrip(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		f1, err := File(src)
		if err != nil {
			t.Logf("generated program failed to parse:\n%s", src)
			return false
		}
		p1 := f1.String()
		f2, err := File(p1)
		if err != nil {
			return false
		}
		return f2.String() == p1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	f := MustParse("for i = 1 to n { a[i] = a[i-1] + i }\n")
	var idents, nums int
	ast.Walk(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident:
			idents++
		case *ast.Num:
			nums++
		}
		return true
	})
	// for-var i, bound n, sub i, sub i, rhs i = 5 idents; literals 1, 1.
	if idents != 5 || nums != 2 {
		t.Errorf("idents=%d nums=%d, want 5 and 2", idents, nums)
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("for i = 1 to n { a[i] = a[i-1] * 2 + b[i] }\n")
		sb.WriteString("loop { k = k + 2; if k > n { exit } }\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := File(src); err != nil {
			b.Fatal(err)
		}
	}
}
