// Package parse implements a recursive-descent parser for the mini loop
// language, producing an *ast.File.
//
// Grammar (statements separated by newlines or ';'; '}' also terminates):
//
//	file    = { stmt } .
//	stmt    = assign | for | loop | while | if | "exit" .
//	assign  = lvalue "=" expr .
//	lvalue  = IDENT [ "[" expr "]" ] .
//	for     = [ IDENT ":" ] "for" IDENT "=" expr "to" expr [ "by" expr ] block .
//	loop    = [ IDENT ":" ] "loop" block .
//	while   = [ IDENT ":" ] "while" cond block .
//	if      = "if" cond block [ "else" ( block | if ) ] .
//	block   = "{" { stmt } "}" .
//	cond    = expr relop expr .
//	expr    = term { ("+"|"-") term } .
//	term    = factor { ("*"|"/") factor } .
//	factor  = primary [ "**" factor ] .
//	primary = NUMBER | IDENT [ "[" expr "]" ] | "(" expr ")" | "-" primary .
package parse

import (
	"errors"
	"fmt"
	"strconv"

	"beyondiv/internal/ast"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
	"beyondiv/internal/scan"
	"beyondiv/internal/scratch"
	"beyondiv/internal/token"
)

// maxErrors bounds diagnostics per file before the parser gives up.
const maxErrors = 20

type parser struct {
	toks []token.Token
	pos  int
	errs []error
	// maxDepth bounds recursive descent (statement and expression
	// nesting); 0 is unchecked. depth is the current recursion depth.
	maxDepth int
	depth    int
	// limitErr records a hit nesting ceiling; parsing then fast-forwards
	// to EOF and the error is surfaced once.
	limitErr *guard.LimitError
	// slab allocates AST nodes in per-kind chunks; stmtBuf is the
	// statement stack nested blocks share (each block records its mark,
	// appends, then carves its statements off the top). See slab.go.
	slab    nodeSlab
	stmtBuf []ast.Stmt
}

// File parses a whole program.
func File(src string) (*ast.File, error) { return FileWithObs(src, nil) }

// FileWithObs is File with telemetry: "scan" and "parse" phase spans
// plus token and statement counters. rec may be nil.
func FileWithObs(src string, rec *obs.Recorder) (*ast.File, error) {
	return FileGuarded(src, rec, guard.Limits{})
}

// FileGuarded is FileWithObs under resource limits: the source length
// is capped by lim.MaxSourceBytes and recursive descent by
// lim.MaxNestDepth, so hostile input produces a diagnostic (wrapping a
// *guard.LimitError) instead of a stack overflow. Zero limit fields
// are unchecked. lim.Inject fires on entry to the "scan" and "parse"
// phases.
func FileGuarded(src string, rec *obs.Recorder, lim guard.Limits) (*ast.File, error) {
	return FileScratch(src, rec, lim, nil)
}

// FileScratch is FileGuarded drawing its reusable buffers — the scan
// token buffer and the block statement stack — from the run's scratch
// arena, so a hot caller (the engine) pays for them once instead of
// per parse. The AST itself is slab-allocated from fresh per-run
// chunks, never from the arena: it escapes into the cached State. A
// nil arena allocates locally.
func FileScratch(src string, rec *obs.Recorder, lim guard.Limits, ar *scratch.Arena) (*ast.File, error) {
	if lim.MaxSourceBytes > 0 && len(src) > lim.MaxSourceBytes {
		return nil, &guard.LimitError{Phase: "scan", Resource: "source bytes", Limit: int64(lim.MaxSourceBytes)}
	}
	var ps *parseScratch
	if ar != nil {
		ps = scratch.Get[parseScratch](&ar.Parse)
	} else {
		ps = &parseScratch{}
	}
	lim.Inject.Fire("scan")
	span := rec.Phase("scan")
	toks, scanErrs := scan.AllInto(src, ps.toks)
	ps.toks = toks[:0] // keep the grown capacity for the next run
	rec.Add("scan.tokens", int64(len(toks)))
	span.End()

	lim.Inject.Fire("parse")
	span = rec.Phase("parse")
	defer span.End()
	p := &parser{toks: toks, maxDepth: lim.MaxNestDepth, stmtBuf: ps.stmtBuf[:0]}
	p.errs = append(p.errs, scanErrs...)
	f := &ast.File{}
	p.skipSemis()
	for !p.at(token.EOF) && len(p.errs) < maxErrors && p.limitErr == nil {
		s := p.stmt()
		if s != nil {
			p.stmtBuf = append(p.stmtBuf, s)
		}
		p.terminator()
	}
	f.Stmts = p.slab.stmtSlice(p.stmtBuf)
	ps.stmtBuf = p.stmtBuf[:0]
	rec.Add("parse.stmts", int64(len(f.Stmts)))
	if p.limitErr != nil {
		return f, errors.Join(append([]error{p.limitErr}, p.errs...)...)
	}
	if len(p.errs) > 0 {
		return f, errors.Join(p.errs...)
	}
	return f, nil
}

// enter counts one level of recursive descent; it reports false (and
// records the limit hit once) when the nesting ceiling is exceeded.
// Every enter pairs with a deferred leave.
func (p *parser) enter() bool {
	p.depth++
	if p.maxDepth > 0 && p.depth > p.maxDepth {
		if p.limitErr == nil {
			p.limitErr = &guard.LimitError{Phase: "parse", Resource: "nesting depth", Limit: int64(p.maxDepth)}
			p.errorf("nesting deeper than %d levels", p.maxDepth)
			p.pos = len(p.toks) // fast-forward to EOF; recursion unwinds
		}
		return false
	}
	return true
}

func (p *parser) leave() { p.depth-- }

// MustParse parses src and panics on error; intended for tests and for
// the paper corpus, whose sources are fixed.
func MustParse(src string) *ast.File {
	f, err := File(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) cur() token.Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	end := token.Pos{Line: 1, Col: 1}
	if len(p.toks) > 0 {
		end = p.toks[len(p.toks)-1].Pos
	}
	return token.Token{Kind: token.EOF, Pos: end}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() token.Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	// Enforce maxErrors here, not only in the parse loops: a deep
	// recursion unwinding at EOF would otherwise append one cascading
	// diagnostic per open construct.
	if len(p.errs) >= maxErrors {
		return
	}
	p.errs = append(p.errs, &token.PosError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// Slab-backed node constructors for the three expression kinds built
// all over the grammar; the statement kinds carve inline at their
// single construction site.
func (p *parser) newBin(op token.Kind, x, y ast.Expr) *ast.Bin {
	b := carve(&p.slab.bin)
	*b = ast.Bin{Op: op, X: x, Y: y}
	return b
}

func (p *parser) newIdent(name string, pos token.Pos) *ast.Ident {
	id := carve(&p.slab.ident)
	*id = ast.Ident{Name: name, NamePos: pos}
	return id
}

func (p *parser) newNum(v int64, pos token.Pos) *ast.Num {
	n := carve(&p.slab.num)
	*n = ast.Num{Value: v, ValPos: pos}
	return n
}

func (p *parser) skipSemis() {
	for p.at(token.SEMI) {
		p.next()
	}
}

// terminator consumes the statement separator after a statement: one or
// more SEMIs, or lets a closing brace / EOF stand.
func (p *parser) terminator() {
	if p.at(token.SEMI) {
		p.skipSemis()
		return
	}
	if p.at(token.RBRACE) || p.at(token.EOF) {
		return
	}
	p.errorf("expected end of statement, found %s", p.cur())
	p.sync()
}

// sync advances to the next statement boundary after an error.
func (p *parser) sync() {
	for !p.at(token.EOF) && !p.at(token.SEMI) && !p.at(token.RBRACE) {
		p.next()
	}
	p.skipSemis()
}

func (p *parser) stmt() ast.Stmt {
	if !p.enter() {
		return nil
	}
	defer p.leave()
	switch p.cur().Kind {
	case token.FOR:
		return p.forStmt("")
	case token.LOOP:
		return p.loopStmt("")
	case token.WHILE:
		return p.whileStmt("")
	case token.IF:
		return p.ifStmt()
	case token.EXIT:
		kw := p.next()
		e := carve(&p.slab.exit)
		*e = ast.Exit{KwPos: kw.Pos}
		return e
	case token.IDENT:
		// Either `label: loop-stmt` or an assignment.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == token.COLON {
			label := p.next().Lit
			p.next() // ':'
			switch p.cur().Kind {
			case token.FOR:
				return p.forStmt(label)
			case token.LOOP:
				return p.loopStmt(label)
			case token.WHILE:
				return p.whileStmt(label)
			default:
				p.errorf("label %q must precede for, loop, or while", label)
				p.sync()
				return nil
			}
		}
		return p.assign()
	default:
		p.errorf("unexpected %s at start of statement", p.cur())
		p.sync()
		return nil
	}
}

func (p *parser) assign() ast.Stmt {
	id := p.expect(token.IDENT)
	var lhs ast.Expr
	if p.at(token.LBRACK) {
		p.next()
		sub := p.expr()
		p.expect(token.RBRACK)
		ix := carve(&p.slab.index)
		*ix = ast.Index{Name: id.Lit, NamePos: id.Pos, Sub: sub}
		lhs = ix
	} else {
		lhs = p.newIdent(id.Lit, id.Pos)
	}
	p.expect(token.ASSIGN)
	rhs := p.expr()
	a := carve(&p.slab.assign)
	*a = ast.Assign{LHS: lhs, RHS: rhs}
	return a
}

func (p *parser) forStmt(label string) ast.Stmt {
	kw := p.expect(token.FOR)
	id := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	lo := p.expr()
	p.expect(token.TO)
	hi := p.expr()
	var step ast.Expr
	if p.at(token.BY) {
		p.next()
		step = p.expr()
	}
	body := p.block()
	f := carve(&p.slab.forS)
	*f = ast.For{
		Label: label,
		Var:   p.newIdent(id.Lit, id.Pos),
		Lo:    lo, Hi: hi, Step: step,
		Body:  body,
		KwPos: kw.Pos,
	}
	return f
}

func (p *parser) loopStmt(label string) ast.Stmt {
	kw := p.expect(token.LOOP)
	body := p.block()
	l := carve(&p.slab.loop)
	*l = ast.Loop{Label: label, Body: body, KwPos: kw.Pos}
	return l
}

func (p *parser) whileStmt(label string) ast.Stmt {
	kw := p.expect(token.WHILE)
	cond := p.cond()
	body := p.block()
	w := carve(&p.slab.while)
	*w = ast.While{Label: label, Cond: cond, Body: body, KwPos: kw.Pos}
	return w
}

func (p *parser) ifStmt() ast.Stmt {
	kw := p.expect(token.IF)
	cond := p.cond()
	then := p.block()
	var els *ast.Block
	if p.at(token.ELSE) {
		p.next()
		if p.at(token.IF) {
			nested := p.ifStmt()
			mark := len(p.stmtBuf)
			p.stmtBuf = append(p.stmtBuf, nested)
			els = carve(&p.slab.block)
			*els = ast.Block{Stmts: p.slab.stmtSlice(p.stmtBuf[mark:]), LPos: nested.Pos()}
			p.stmtBuf = p.stmtBuf[:mark]
		} else {
			els = p.block()
		}
	}
	i := carve(&p.slab.ifS)
	*i = ast.If{Cond: cond, Then: then, Else: els, KwPos: kw.Pos}
	return i
}

func (p *parser) block() *ast.Block {
	lb := p.expect(token.LBRACE)
	b := carve(&p.slab.block)
	*b = ast.Block{LPos: lb.Pos}
	p.skipSemis()
	mark := len(p.stmtBuf)
	for !p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) < maxErrors {
		s := p.stmt()
		if s != nil {
			p.stmtBuf = append(p.stmtBuf, s)
		}
		p.terminator()
	}
	p.expect(token.RBRACE)
	b.Stmts = p.slab.stmtSlice(p.stmtBuf[mark:])
	p.stmtBuf = p.stmtBuf[:mark]
	return b
}

// cond parses `expr relop expr`.
func (p *parser) cond() ast.Expr {
	x := p.expr()
	if !p.cur().Kind.IsRelop() {
		p.errorf("expected relational operator, found %s", p.cur())
		return x
	}
	op := p.next().Kind
	y := p.expr()
	return p.newBin(op, x, y)
}

func (p *parser) expr() ast.Expr {
	x := p.term()
	for p.at(token.PLUS) || p.at(token.MINUS) {
		op := p.next().Kind
		y := p.term()
		x = p.newBin(op, x, y)
	}
	return x
}

func (p *parser) term() ast.Expr {
	x := p.factor()
	for p.at(token.STAR) || p.at(token.SLASH) {
		op := p.next().Kind
		y := p.factor()
		x = p.newBin(op, x, y)
	}
	return x
}

// factor handles the right-associative exponent operator.
func (p *parser) factor() ast.Expr {
	x := p.primary()
	if p.at(token.POW) {
		p.next()
		y := p.factor()
		return p.newBin(token.POW, x, y)
	}
	return x
}

func (p *parser) primary() ast.Expr {
	if !p.enter() {
		return p.newNum(0, p.cur().Pos)
	}
	defer p.leave()
	switch p.cur().Kind {
	case token.NUMBER:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil && len(p.errs) < maxErrors {
			p.errs = append(p.errs, &token.PosError{Pos: t.Pos, Msg: err.Error()})
		}
		return p.newNum(v, t.Pos)
	case token.IDENT:
		t := p.next()
		if p.at(token.LBRACK) {
			p.next()
			sub := p.expr()
			p.expect(token.RBRACK)
			ix := carve(&p.slab.index)
			*ix = ast.Index{Name: t.Lit, NamePos: t.Pos, Sub: sub}
			return ix
		}
		return p.newIdent(t.Lit, t.Pos)
	case token.LPAREN:
		p.next()
		e := p.expr()
		p.expect(token.RPAREN)
		return e
	case token.MINUS:
		t := p.next()
		u := carve(&p.slab.unary)
		*u = ast.Unary{Op: token.MINUS, X: p.primary(), OpPos: t.Pos}
		return u
	default:
		p.errorf("unexpected %s in expression", p.cur())
		t := p.cur()
		p.next()
		return p.newNum(0, t.Pos)
	}
}
