// Package dom computes dominator trees and dominance frontiers over the
// ir CFG, using the iterative algorithm of Cooper, Harvey and Kennedy
// ("A Simple, Fast Dominance Algorithm"), plus the dominance-frontier
// construction from Cytron et al. that drives φ placement in internal/ssa.
package dom

import "beyondiv/internal/ir"

// Tree is a dominator tree over the reachable blocks of a function.
// It also serves as a postdominator tree (NewPost): the same structure
// over the reversed CFG, where Dominates(a, b) reads "a postdominates
// b".
type Tree struct {
	f    *ir.Func
	root *ir.Block
	// preds/succs realize the (possibly reversed) edge direction.
	preds func(*ir.Block) []*ir.Block
	succs func(*ir.Block) []*ir.Block
	// idom[b.ID] is the immediate dominator; nil for the entry block and
	// for unreachable blocks.
	idom []*ir.Block
	// children[b.ID] lists blocks immediately dominated by b.
	children [][]*ir.Block
	// pre/post order numbers of the dominator tree for O(1) dominance
	// queries.
	pre, post []int
	// rpoIndex[b.ID] is the block's reverse-postorder position, used
	// during construction and exported for deterministic iteration.
	rpoIndex []int
	rpo      []*ir.Block
}

// New computes the dominator tree of f's reachable blocks.
func New(f *ir.Func) *Tree {
	return build(f, f.Entry,
		func(b *ir.Block) []*ir.Block { return b.Preds },
		func(b *ir.Block) []*ir.Block { return b.Succs })
}

// NewPost computes the postdominator tree: dominators over the reversed
// CFG rooted at f.Exit. Dominates(a, b) then means "every path from b
// to the exit passes through a". Blocks that cannot reach the exit
// (infinite loops) postdominate nothing and are postdominated by
// nothing.
func NewPost(f *ir.Func) *Tree {
	return build(f, f.Exit,
		func(b *ir.Block) []*ir.Block { return b.Succs },
		func(b *ir.Block) []*ir.Block { return b.Preds })
}

func build(f *ir.Func, root *ir.Block, preds, succs func(*ir.Block) []*ir.Block) *Tree {
	t := &Tree{
		f:        f,
		root:     root,
		preds:    preds,
		succs:    succs,
		idom:     make([]*ir.Block, f.NumBlocks()),
		children: make([][]*ir.Block, f.NumBlocks()),
		pre:      make([]int, f.NumBlocks()),
		post:     make([]int, f.NumBlocks()),
		rpoIndex: make([]int, f.NumBlocks()),
	}
	t.rpo = reversePostorderFrom(f, root, succs)
	for i := range t.rpoIndex {
		t.rpoIndex[i] = -1
	}
	for i, b := range t.rpo {
		t.rpoIndex[b.ID] = i
	}

	// Cooper-Harvey-Kennedy iteration. The root's idom is itself during
	// the fixpoint, cleared afterwards.
	t.idom[root.ID] = root
	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo {
			if b == root {
				continue
			}
			var newIdom *ir.Block
			for _, p := range preds(b) {
				if t.idom[p.ID] == nil {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	t.idom[root.ID] = nil

	for _, b := range t.rpo {
		if d := t.idom[b.ID]; d != nil {
			t.children[d.ID] = append(t.children[d.ID], b)
		}
	}

	// Number the dominator tree for O(1) Dominates queries.
	counter := 0
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: root}}
	t.pre[root.ID] = counter
	counter++
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(t.children[fr.b.ID]) {
			c := t.children[fr.b.ID][fr.next]
			fr.next++
			t.pre[c.ID] = counter
			counter++
			stack = append(stack, frame{b: c})
			continue
		}
		t.post[fr.b.ID] = counter
		counter++
		stack = stack[:len(stack)-1]
	}
	return t
}

// intersect walks two blocks up the (partial) dominator tree to their
// common ancestor, comparing by reverse-postorder index.
func (t *Tree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoIndex[a.ID] > t.rpoIndex[b.ID] {
			a = t.idom[a.ID]
		}
		for t.rpoIndex[b.ID] > t.rpoIndex[a.ID] {
			b = t.idom[b.ID]
		}
	}
	return a
}

// Idom returns the immediate dominator of b, or nil for the entry block
// and unreachable blocks.
func (t *Tree) Idom(b *ir.Block) *ir.Block { return t.idom[b.ID] }

// Children returns the blocks whose immediate dominator is b.
func (t *Tree) Children(b *ir.Block) []*ir.Block { return t.children[b.ID] }

// Reachable reports whether b was reachable (from the root, along the
// tree's edge direction) when the tree was built.
func (t *Tree) Reachable(b *ir.Block) bool {
	return b == t.root || t.idom[b.ID] != nil
}

// Dominates reports whether a dominates b (reflexively: a dominates a).
// Unreachable blocks dominate nothing and are dominated by nothing.
func (t *Tree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.pre[a.ID] <= t.pre[b.ID] && t.post[b.ID] <= t.post[a.ID]
}

// ReversePostorder returns the reachable blocks in reverse postorder
// (computed once at construction).
func (t *Tree) ReversePostorder() []*ir.Block { return t.rpo }

// Frontiers computes the dominance frontier of every reachable block,
// indexed by block ID (Cytron et al., §4.2): DF(b) contains each block w
// such that b dominates a predecessor of w but does not strictly
// dominate w.
func (t *Tree) Frontiers() [][]*ir.Block {
	df := make([][]*ir.Block, t.f.NumBlocks())
	inDF := make(map[[2]int]bool) // (b, w) pairs already added
	for _, w := range t.rpo {
		if len(t.preds(w)) < 2 {
			continue
		}
		wIdom := t.idom[w.ID]
		for _, p := range t.preds(w) {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != wIdom {
				key := [2]int{runner.ID, w.ID}
				if !inDF[key] {
					inDF[key] = true
					df[runner.ID] = append(df[runner.ID], w)
				}
				runner = t.idom[runner.ID]
			}
		}
	}
	return df
}

// reversePostorderFrom computes reverse postorder from root following
// the given successor function (iteratively, as ir.Postorder does).
func reversePostorderFrom(f *ir.Func, root *ir.Block, succs func(*ir.Block) []*ir.Block) []*ir.Block {
	seen := make([]bool, f.NumBlocks())
	var order []*ir.Block
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: root}}
	seen[root.ID] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		adv := false
		for fr.next < len(succs(fr.b)) {
			s := succs(fr.b)[fr.next]
			fr.next++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{b: s})
				adv = true
				break
			}
		}
		if adv {
			continue
		}
		order = append(order, fr.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
