package dom

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

func buildFunc(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	return cfgbuild.Build(f).Func
}

// slowDominates is the textbook oracle: a dominates b iff removing a
// from the graph makes b unreachable from entry (or a == b).
func slowDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // pretend a is removed
	var stack []*ir.Block
	if f.Entry != a {
		stack = append(stack, f.Entry)
		seen[f.Entry] = true
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	// b unreachable without a => a dominates b (if b was reachable at all).
	return !seen[b] || b == a
}

func reachableBlocks(f *ir.Func) []*ir.Block { return f.Postorder() }

func checkAgainstOracle(t *testing.T, f *ir.Func) {
	t.Helper()
	tr := New(f)
	blocks := reachableBlocks(f)
	for _, a := range blocks {
		for _, b := range blocks {
			want := slowDominates(f, a, b)
			if got := tr.Dominates(a, b); got != want {
				t.Errorf("Dominates(%s,%s) = %v, oracle %v", a, b, got, want)
			}
		}
	}
}

func TestStraightLineDominators(t *testing.T) {
	f := buildFunc(t, "i = 1\nj = i + 1\n")
	checkAgainstOracle(t, f)
	tr := New(f)
	if tr.Idom(f.Entry) != nil {
		t.Error("entry must have no idom")
	}
}

func TestDiamond(t *testing.T) {
	f := buildFunc(t, "if x > 0 { k = 1 } else { k = 2 }\nm = k\n")
	checkAgainstOracle(t, f)
	tr := New(f)
	// The join block's idom is the branch block (entry).
	for _, b := range f.Blocks {
		if b.Comment == "if.join" {
			if tr.Idom(b) != f.Entry {
				t.Errorf("join idom = %v, want entry", tr.Idom(b))
			}
		}
	}
}

func TestLoopDominators(t *testing.T) {
	f := buildFunc(t, "for i = 1 to n { a[i] = 0 }\n")
	checkAgainstOracle(t, f)
	tr := New(f)
	var header, body, latch *ir.Block
	for _, b := range f.Blocks {
		switch b.Comment {
		case "L1.header":
			header = b
		case "L1.body":
			body = b
		case "L1.latch":
			latch = b
		}
	}
	if header == nil || body == nil || latch == nil {
		t.Fatal("loop blocks not found")
	}
	if !tr.Dominates(header, body) || !tr.Dominates(header, latch) {
		t.Error("header must dominate body and latch")
	}
	if tr.Dominates(body, header) {
		t.Error("body must not dominate header")
	}
}

func TestNestedLoopsAndConditionals(t *testing.T) {
	f := buildFunc(t, `
k = 0
for i = 1 to n {
    for j = 1 to i {
        if a[j] > 0 {
            k = k + 1
        } else {
            k = k + 2
        }
    }
    k = k + 3
}
`)
	checkAgainstOracle(t, f)
}

func TestLoopWithMidExit(t *testing.T) {
	f := buildFunc(t, `
i = 0
loop {
    i = i + 1
    if i > 10 { exit }
    j = j + i
}
`)
	checkAgainstOracle(t, f)
}

func TestFrontiersDiamond(t *testing.T) {
	f := buildFunc(t, "if x > 0 { k = 1 } else { k = 2 }\nm = k\n")
	tr := New(f)
	df := tr.Frontiers()
	var then, join *ir.Block
	for _, b := range f.Blocks {
		switch b.Comment {
		case "if.then":
			then = b
		case "if.join":
			join = b
		}
	}
	if then == nil || join == nil {
		t.Fatal("blocks not found")
	}
	if len(df[then.ID]) != 1 || df[then.ID][0] != join {
		t.Errorf("DF(then) = %v, want [%s]", df[then.ID], join)
	}
	// The branch block dominates the join, so join is not in its DF.
	for _, w := range df[f.Entry.ID] {
		if w == join {
			t.Error("join should not be in DF(entry)")
		}
	}
}

func TestFrontiersLoopHeader(t *testing.T) {
	// A loop header is in the dominance frontier of the latch (and of
	// itself through the back edge path).
	f := buildFunc(t, "for i = 1 to n { a[i] = 0 }\n")
	tr := New(f)
	df := tr.Frontiers()
	var header, latch *ir.Block
	for _, b := range f.Blocks {
		switch b.Comment {
		case "L1.header":
			header = b
		case "L1.latch":
			latch = b
		}
	}
	found := false
	for _, w := range df[latch.ID] {
		if w == header {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(latch) = %v, want to contain header %s", df[latch.ID], header)
	}
	// Header's own DF contains header (it dominates the latch, a pred
	// of itself, but does not strictly dominate itself).
	found = false
	for _, w := range df[header.ID] {
		if w == header {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(header) = %v, want to contain header itself", df[header.ID])
	}
}

// TestFrontierDefinition checks DF against its definition on random
// programs: w ∈ DF(b) iff b dominates some pred of w and not strictly w.
func TestFrontierDefinition(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		f := cfgbuild.Build(file).Func
		tr := New(f)
		df := tr.Frontiers()
		blocks := reachableBlocks(f)
		inDF := map[[2]int]bool{}
		for _, b := range blocks {
			for _, w := range df[b.ID] {
				inDF[[2]int{b.ID, w.ID}] = true
			}
		}
		for _, b := range blocks {
			for _, w := range blocks {
				want := false
				for _, p := range w.Preds {
					if tr.Dominates(b, p) && !(tr.Dominates(b, w) && b != w) {
						want = true
					}
				}
				if want != inDF[[2]int{b.ID, w.ID}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominatorOracle validates the fast algorithm against the
// removal-based oracle on random programs.
func TestQuickDominatorOracle(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		f := cfgbuild.Build(file).Func
		tr := New(f)
		blocks := reachableBlocks(f)
		for _, a := range blocks {
			for _, b := range blocks {
				if tr.Dominates(a, b) != slowDominates(f, a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDominators(b *testing.B) {
	file, err := parse.File(progen.NestedLoops(6))
	if err != nil {
		b.Fatal(err)
	}
	f := cfgbuild.Build(file).Func
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(f)
	}
}
