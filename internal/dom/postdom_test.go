package dom

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

// slowPostDominates: a postdominates b iff removing a makes Exit
// unreachable from b (or a == b), for blocks that can reach Exit.
func slowPostDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true}
	var stack []*ir.Block
	if b != a {
		stack = append(stack, b)
		seen[b] = true
	}
	reached := false
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == f.Exit {
			reached = true
			break
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return !reached
}

// canReachExit without removals.
func canReachExit(f *ir.Func, b *ir.Block) bool {
	seen := map[*ir.Block]bool{b: true}
	stack := []*ir.Block{b}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == f.Exit {
			return true
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func checkPostAgainstOracle(t *testing.T, src string) {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	f := cfgbuild.Build(file).Func
	pt := NewPost(f)
	for _, a := range f.Blocks {
		for _, b := range f.Blocks {
			if !canReachExit(f, a) || !canReachExit(f, b) {
				continue // tree leaves these unrelated; oracle undefined
			}
			want := slowPostDominates(f, a, b)
			if got := pt.Dominates(a, b); got != want {
				t.Errorf("PostDominates(%s,%s) = %v, oracle %v in\n%s", a, b, got, want, f)
			}
		}
	}
}

func TestPostDominatorsBasic(t *testing.T) {
	checkPostAgainstOracle(t, "i = 1\nif x > 0 { i = 2 } else { i = 3 }\nj = i\n")
	checkPostAgainstOracle(t, "for i = 1 to n { if a[i] > 0 { k = k + 1 } }\n")
	checkPostAgainstOracle(t, "i = 0\nloop { i = i + 1\nif i > 10 { exit }\nj = j + 1 }\n")
}

func TestPostDominatorsConditional(t *testing.T) {
	// The join block postdominates both branches; the then-block
	// postdominates nothing but itself.
	file := parse.MustParse("if x > 0 { k = 1 } else { k = 2 }\nm = k\n")
	f := cfgbuild.Build(file).Func
	pt := NewPost(f)
	var then, els, join *ir.Block
	for _, b := range f.Blocks {
		switch b.Comment {
		case "if.then":
			then = b
		case "if.else":
			els = b
		case "if.join":
			join = b
		}
	}
	if !pt.Dominates(join, then) || !pt.Dominates(join, els) {
		t.Error("join must postdominate both branches")
	}
	if pt.Dominates(then, f.Entry) {
		t.Error("a branch must not postdominate the entry")
	}
	if !pt.Dominates(f.Exit, f.Entry) {
		t.Error("exit postdominates everything that reaches it")
	}
}

func TestQuickPostDominatorOracle(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		f := cfgbuild.Build(file).Func
		pt := NewPost(f)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				if !canReachExit(f, a) || !canReachExit(f, b) {
					continue
				}
				if pt.Dominates(a, b) != slowPostDominates(f, a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
