// Transformation-layer benchmarks: what the full
// analyze-transform-validate pipeline costs on top of plain analysis,
// what translation validation itself costs, and how cheap the
// clone-on-transform copy is next to rebuilding the program from
// source. `make bench` additionally writes the headline numbers to
// BENCH_xform.json via TestXformBenchArtifact.
package beyondiv

import (
	"os"
	"runtime"
	"testing"

	"beyondiv/internal/ir"
)

// benchOptimize measures repeated Optimize runs of optSrc — a program
// where every default pass has work — through a warm analysis cache, so
// the measured cost is the transform pipeline itself (clone, rewrites,
// re-analysis, validation), not the frontend.
func benchOptimize(skipValidation bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		an := NewAnalyzer(Options{CacheEntries: 16, SkipValidation: skipValidation})
		if _, err := an.Optimize(optSrc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Optimize(optSrc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOptimize(b *testing.B) {
	for _, bc := range []struct {
		name string
		skip bool
	}{{"validated", false}, {"novalidate", true}} {
		b.Run(bc.name, func(b *testing.B) {
			an := NewAnalyzer(Options{CacheEntries: 16, SkipValidation: bc.skip})
			if _, err := an.Optimize(optSrc); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := an.Optimize(optSrc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClone: the dense-ID-preserving deep copy clone-on-transform
// rests on, alone (scratch-reusing and cold), next to what it replaces
// — re-running the frontend on the source.
func BenchmarkClone(b *testing.B) {
	prog, err := Analyze(optSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scratch", func(b *testing.B) {
		cs := &ir.CloneScratch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if prog.SSA.Clone(cs) == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if prog.SSA.Clone(nil) == nil {
				b.Fatal("nil clone")
			}
		}
	})
}

// TestXformBenchArtifact writes the transformation layer's headline
// numbers to the file named by BENCH_JSON (skipped when unset), so
// `make bench` leaves BENCH_xform.json next to the engine and hot-path
// artifacts: full validated Optimize vs validation off, both as deltas
// over the cold-analysis baseline the optimizer builds on, the clone
// cost relative to that baseline, and the rewrite volume per run.
func TestXformBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	res, err := Optimize(optSrc)
	if err != nil {
		t.Fatal(err)
	}
	analyze := benchColdAnalyze(optSrc)
	validated := benchOptimize(false)
	unvalidated := benchOptimize(true)
	prog, err := Analyze(optSrc)
	if err != nil {
		t.Fatal(err)
	}
	clone := testing.Benchmark(func(b *testing.B) {
		cs := &ir.CloneScratch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog.SSA.Clone(cs)
		}
	})

	report := map[string]any{
		"gomaxprocs":                    runtime.GOMAXPROCS(0),
		"num_cpu":                       runtime.NumCPU(),
		"analyze_cold_ns_per_op":        analyze.NsPerOp(),
		"optimize_ns_per_op":            validated.NsPerOp(),
		"optimize_allocs_per_op":        validated.AllocsPerOp(),
		"optimize_novalidate_ns_per_op": unvalidated.NsPerOp(),
		"optimize_vs_analyze":           ratio(validated.NsPerOp(), analyze.NsPerOp()),
		"validation_overhead":           ratio(validated.NsPerOp(), unvalidated.NsPerOp()),
		"clone_ns_per_op":               clone.NsPerOp(),
		"clone_allocs_per_op":           clone.AllocsPerOp(),
		"clone_vs_analyze":              ratio(clone.NsPerOp(), analyze.NsPerOp()),
		"rewrites_per_run":              res.Rewrites,
		"rounds_per_run":                res.Rounds,
		"validations_per_run":           res.Validations,
	}
	writeBenchJSON(t, path, report)
	t.Logf("optimize %.1fx analyze (%.1fx of it validation); clone is %.2fx an analyze; %d rewrites in %d rounds",
		ratio(validated.NsPerOp(), analyze.NsPerOp()),
		ratio(validated.NsPerOp(), unvalidated.NsPerOp()),
		ratio(clone.NsPerOp(), analyze.NsPerOp()), res.Rewrites, res.Rounds)

	// The structural claims behind clone-on-transform: the private copy
	// must be much cheaper than re-running the frontend, and the
	// pipeline must actually rewrite this program.
	if r := ratio(clone.NsPerOp(), analyze.NsPerOp()); r > 0.5 {
		t.Errorf("clone costs %.2fx a full analysis; expected well under 0.5x", r)
	}
	if res.Rewrites == 0 {
		t.Error("benchmark program not rewritten; the numbers measure nothing")
	}
}
