// Incremental-analysis benchmark: what the persistent store buys across
// process restarts. Three scenarios over the same generated corpus —
// cold (empty store, every program analyzed and persisted), edit (a new
// process re-opens the store after one file changed: one re-analysis,
// the rest served from disk), warm (a new process, nothing changed:
// zero analysis passes). `make bench-incremental` writes the numbers to
// BENCH_incremental.json.
package beyondiv

import (
	"fmt"
	"os"
	"testing"
	"time"

	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/progen"
)

// incrementalCorpusSize is N in the headline claim: editing 1 of N
// files should cost about 1/N of a cold start.
const incrementalCorpusSize = 24

func incrementalCorpus() []string {
	srcs := make([]string, incrementalCorpusSize)
	for i := range srcs {
		srcs[i] = progen.DepWorkload(int64(i + 1))
	}
	return srcs
}

// runCorpus analyzes every source sequentially on one analyzer built
// from opts, returning elapsed wall time and the registry the run
// recorded into.
func runCorpus(t testing.TB, srcs []string, opts Options) (time.Duration, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	opts.Metrics = reg
	an := NewAnalyzer(opts)
	start := time.Now()
	for _, src := range srcs {
		if _, err := an.Analyze(src); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start), reg
}

// TestIncrementalBenchArtifact measures the three scenarios and writes
// the file named by BENCH_JSON (skipped when unset). Each scenario runs
// in a fresh analyzer over the same store directory — a process restart
// in miniature; the cold scenario gets a fresh directory per rep. The
// structural claims are asserted, not just reported: the edit round
// re-analyzes exactly one program, the warm round none.
func TestIncrementalBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	srcs := incrementalCorpus()
	n := len(srcs)
	reps := 3

	cold := time.Duration(1<<62 - 1)
	var dir string
	for r := 0; r < reps; r++ {
		// Fresh store every rep: cold means cold. The last rep's
		// directory stays warm for the scenarios below.
		dir = t.TempDir()
		d, reg := runCorpus(t, srcs, Options{CacheDir: dir})
		if got := reg.Counter("engine.store.write"); got != int64(n) {
			t.Fatalf("cold rep wrote %d entries, want %d", got, n)
		}
		if d < cold {
			cold = d
		}
	}

	// Edit: one program changed (a fresh literal each rep keeps every
	// edit a genuine store miss), analyzed by a new process.
	edit := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		edited := append([]string(nil), srcs...)
		edited[0] = fmt.Sprintf("%s\nzedit = %d\n", srcs[0], r+1)
		d, reg := runCorpus(t, edited, Options{CacheDir: dir})
		if got := reg.Counter("engine.store.hit"); got != int64(n-1) {
			t.Fatalf("edit rep hit %d entries, want %d", got, n-1)
		}
		if got := reg.Counter("engine.store.write"); got != 1 {
			t.Fatalf("edit rep wrote %d entries, want 1", got)
		}
		if d < edit {
			edit = d
		}
	}

	// Warm: a new process, nothing changed — every answer is an alias
	// hit decoded straight off disk, zero analysis passes.
	warm := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		d, reg := runCorpus(t, srcs, Options{CacheDir: dir})
		if got := reg.Counter("engine.store.hit.alias"); got != int64(n) {
			t.Fatalf("warm rep had %d alias hits, want %d", got, n)
		}
		if got := reg.Counter("engine.store.miss"); got != 0 {
			t.Fatalf("warm rep missed %d times, want 0", got)
		}
		if d < warm {
			warm = d
		}
	}

	editVsCold := ratio(int64(edit), int64(cold))
	warmSpeedup := ratio(int64(cold), int64(warm))
	report := map[string]any{
		"corpus_size":          n,
		"cold_ns":              cold.Nanoseconds(),
		"cold_ns_per_program":  cold.Nanoseconds() / int64(n),
		"edit_one_of_n_ns":     edit.Nanoseconds(),
		"warm_ns":              warm.Nanoseconds(),
		"warm_ns_per_program":  warm.Nanoseconds() / int64(n),
		"edit_vs_cold":         editVsCold,
		"ideal_edit_vs_cold":   1.0 / float64(n),
		"warm_speedup_vs_cold": warmSpeedup,
	}
	writeBenchJSON(t, path, report)
	t.Logf("cold %v, 1-of-%d edit %v (%.1f%% of cold, ideal %.1f%%), warm restart %v (%.0fx faster than cold)",
		cold, n, edit, 100*editVsCold, 100.0/float64(n), warm, warmSpeedup)

	// The headline claims, with slack for timing noise: an edit costs
	// on the order of 1/N of a cold start (the one re-analysis plus N-1
	// disk reads), and a warm restart is at least 10x cold.
	if editVsCold > 6.0/float64(n) {
		t.Errorf("1-of-%d edit cost %.1f%% of cold; want on the order of %.1f%%",
			n, 100*editVsCold, 100.0/float64(n))
	}
	if warmSpeedup < 10 {
		t.Errorf("warm restart only %.1fx faster than cold; want >= 10x", warmSpeedup)
	}
}
