// Restructuring-tier tests: the parmark/interchange/distribute passes
// end to end through the public Optimize pipeline, and the parallel
// execution backend's determinism contract (chunked execution is
// byte-identical to sequential — these tests also run under -race via
// `make test-race`, where the chunk goroutines are checked for
// unsynchronized access).
package beyondiv

import (
	"slices"
	"testing"

	"beyondiv/internal/interp"
	"beyondiv/internal/obs"
	"beyondiv/internal/paper"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

// passRewrites sums the rewrites a named pass reported across rounds.
func passRewrites(r *OptimizeResult, name string) int {
	n := 0
	for _, s := range r.Stats {
		if s.Name == name {
			n += s.Rewrites
		}
	}
	return n
}

func TestParmarkMarksProvablyParallelLoop(t *testing.T) {
	r, err := Optimize(`
L1: for i = 0 to 99 {
    a[i] = a[i] + 1
}
L2: for i = 1 to 99 {
    b[i] = b[i - 1] + a[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(r.ParallelLoops, "L1") {
		t.Errorf("L1 has no carried dependence and should be marked: %v", r.ParallelLoops)
	}
	if slices.Contains(r.ParallelLoops, "L2") {
		t.Errorf("L2 carries a flow dependence (distance 1) and must not be marked: %v", r.ParallelLoops)
	}
	if passRewrites(r, "parmark") == 0 {
		t.Error("parmark reported no annotation delta")
	}
}

func TestParmarkBlocksScalarRecurrence(t *testing.T) {
	// No carried array dependence — a[i] cells are all distinct — but s
	// is a carried scalar recurrence the header-φ gate must catch.
	r, err := Optimize(`
s = 0
L1: for i = 0 to 20 {
    s = s + 2
    a[i] = s
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(r.ParallelLoops, "L1") {
		t.Error("loop with a carried scalar recurrence was marked parallel")
	}
}

// TestInterchangePromotesInnerParallelLoop: the column stencil carries
// its only dependence on the outer loop (distance (1,0)), so the inner
// loop is parallel but stuck inside. Interchange must swap the nest and
// parmark must then mark the new outer loop.
func TestInterchangePromotesInnerParallelLoop(t *testing.T) {
	r, err := Optimize(`
L1: for i = 0 to 19 {
    L2: for j = 0 to 19 {
        a[i * 100 + j + 100] = a[i * 100 + j] + 1
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if passRewrites(r, "interchange") != 1 {
		t.Fatalf("interchange rewrites = %d, want 1; stats %+v", passRewrites(r, "interchange"), r.Stats)
	}
	if !slices.Contains(r.ParallelLoops, "L2") {
		t.Errorf("swapped-outward L2 should be marked parallel: %v", r.ParallelLoops)
	}
	if r.Validations == 0 {
		t.Error("interchange ran without translation validation")
	}
	// The transformed program's loop forest has L2 as the root.
	var roots []string
	for _, l := range r.Program.Loops.Roots {
		roots = append(roots, l.Label)
	}
	if !slices.Contains(roots, "L2") {
		t.Errorf("transformed forest roots = %v, want L2 outermost", roots)
	}
}

// TestInterchangeRefusesLexNegative: the §6.1 shape where a (<,>)
// dependence makes interchange illegal — distance (1,-1); the swap
// would reverse it to (-1,1), flowing backwards. The pass must leave
// the nest alone even though it is syntactically a perfect candidate.
func TestInterchangeRefusesLexNegative(t *testing.T) {
	r, err := Optimize(`
L1: for i = 0 to 9 {
    L2: for j = 1 to 9 {
        a[i * 100 + j + 99] = a[i * 100 + j] + 1
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if n := passRewrites(r, "interchange"); n != 0 {
		t.Errorf("interchange fired %d times on a (<,>) dependence", n)
	}
}

func TestDistributeSplitsAlongPiBlocks(t *testing.T) {
	// One loop, two π-blocks: the b recurrence must stay a loop; the
	// independent a updates split off and parallelize. (0-based so
	// normalize leaves the body flat: a normalization preamble assign
	// couples every counter use into one block — sound, just inert.)
	r, err := Optimize(`
L1: for i = 0 to 50 {
    a[i] = a[i] + 1
    b[i + 1] = b[i] + 1
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if passRewrites(r, "distribute") == 0 {
		t.Fatalf("distribute did not split; stats %+v", r.Stats)
	}
	var labels []string
	for _, l := range r.Program.Loops.Loops {
		labels = append(labels, l.Label)
	}
	if len(labels) != 2 {
		t.Fatalf("transformed program has loops %v, want the split pair", labels)
	}
	// The split singleton holding only the a-updates is parallel.
	if len(r.ParallelLoops) != 1 {
		t.Errorf("parallel loops = %v, want exactly the a-block", r.ParallelLoops)
	}
}

// TestRestructuredRunMatchesOriginal is the paper.Corpus + progen
// differential with the full restructuring pipeline: for every program,
// optimized execution (which the engine already translation-validated)
// must agree with the original on a probe input — belt and braces over
// the grid validation, exercising interchange/distribute/parmark on
// arbitrary shapes.
func TestRestructuredRunMatchesOriginal(t *testing.T) {
	var sources []string
	for _, ex := range paper.Corpus {
		sources = append(sources, ex.Source)
	}
	gen := progen.New()
	for seed := int64(0); seed < 12; seed++ {
		sources = append(sources, gen.Program(seed))
	}
	for i, src := range sources {
		r, err := Optimize(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		params := map[string]int64{}
		for _, n := range []string{"n", "m", "k"} {
			params[n] = 7
		}
		orig, err1 := r.Original.Run(params)
		xf, err2 := r.Program.Run(params)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("source %d: run disagreement: %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(orig.Writes) != len(xf.Writes) {
			t.Errorf("source %d: %d writes originally, %d after restructuring", i, len(orig.Writes), len(xf.Writes))
		}
	}
}

// TestParallelExecutionDeterminism: RunASTParallel must reproduce
// RunAST byte for byte — same store trace in the same global order,
// same scalars — for every worker count, including workers that divide
// the iteration space unevenly. Runs under -race in CI.
func TestParallelExecutionDeterminism(t *testing.T) {
	cases := []struct {
		name, src string
		marks     map[string]bool
	}{
		{"simple", `
L1: for i = 0 to 99 {
    a[i] = i * 3
}
`, map[string]bool{"L1": true}},
		{"lastwriter", `
s = 0
L1: for i = 0 to 30 {
    a[i] = a[i] + 5
    s = i
}
`, map[string]bool{"L1": true}},
		{"nest", `
L1: for i = 0 to 9 {
    L2: for j = 0 to 9 {
        a[i * 100 + j] = i + j
    }
}
`, map[string]bool{"L1": true}},
		{"downward", `
L1: for i = 50 to 1 by -1 {
    a[i] = a[i] * 2
}
`, map[string]bool{"L1": true}},
		{"zerotrip", `
L1: for i = 5 to 1 {
    a[i] = 1
}
`, map[string]bool{"L1": true}},
		{"unmarked-falls-back", `
s = 0
L1: for i = 1 to 20 {
    s = s + i
    a[i] = s
}
`, map[string]bool{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file, err := parse.File(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			cfg := interp.Config{MaxSteps: 100000}
			want, err := interp.RunAST(file, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 7, 16} {
				got, err := interp.RunASTParallel(file, cfg, tc.marks, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !slices.Equal(want.Writes, got.Writes) {
					t.Fatalf("workers=%d: store trace diverged:\nseq %v\npar %v", workers, want.Writes, got.Writes)
				}
				if len(want.Scalars) != len(got.Scalars) {
					t.Fatalf("workers=%d: scalar sets differ: %v vs %v", workers, want.Scalars, got.Scalars)
				}
				for k, v := range want.Scalars {
					if got.Scalars[k] != v {
						t.Fatalf("workers=%d: scalar %s = %d, want %d", workers, k, got.Scalars[k], v)
					}
				}
			}
		})
	}
}

// TestParmarkDecisionProvenance: the marks travel into the -why
// provenance (obs decision log) alongside the classification rules.
func TestParmarkDecisionProvenance(t *testing.T) {
	rec := obs.New()
	r, err := OptimizeWith(`
L1: for i = 0 to 9 {
    a[i] = 1
}
L2: for i = 1 to 9 {
    b[i] = b[i - 1]
}
`, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(r.ParallelLoops, "L1") {
		t.Fatalf("L1 not marked: %v", r.ParallelLoops)
	}
	var marked, blocked bool
	for _, d := range rec.Decisions() {
		if d.Rule == "parmark.marked" && d.Subject == "L1" {
			marked = true
		}
		if d.Rule == "parmark.blocked" && d.Subject == "L2" {
			blocked = true
		}
	}
	if !marked || !blocked {
		t.Errorf("decision log missing parmark provenance (marked=%v blocked=%v): %+v",
			marked, blocked, rec.Decisions())
	}
}
