//go:build unix

package beyondiv

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU
// time. The overhead gate diffs it across measurement windows: unlike
// wall clock, CPU time doesn't count involuntary descheduling, so a
// noisy neighbor on a shared box can't land its burst on one side of
// an off/on comparison.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
