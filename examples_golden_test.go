// Golden legality tests for the three demo workloads under examples/:
// the classification and legality verdicts their commentary (and the
// README) narrates, pinned as assertions so the demos cannot silently
// rot. The sources here mirror the examples' embedded programs.
package beyondiv

import (
	"strings"
	"testing"

	"beyondiv/internal/depend"
)

// wavefrontSrc mirrors examples/wavefront: distances (1,0) and (0,1) —
// neither loop parallel, interchange legal but unhelpful, skew+swap the
// single-transformation repair.
const wavefrontSrc = `
L1: for i = 1 to 64 {
    L2: for j = 1 to 64 {
        a[i * 100 + j] = a[i * 100 + j - 100] + a[i * 100 + j - 1]
    }
}
`

func TestWavefrontGolden(t *testing.T) {
	prog, err := Analyze(wavefrontSrc)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.IV.LoopByLabel("L1")
	inner := prog.IV.LoopByLabel("L2")

	for _, l := range []string{"L1", "L2"} {
		if ok, _ := depend.Parallelizable(prog.Deps, prog.IV.LoopByLabel(l)); ok {
			t.Errorf("%s must not parallelize as written", l)
		}
	}
	if ok, _ := depend.InterchangeLegal(prog.Deps, outer, inner); !ok {
		t.Error("wavefront interchange is legal (just unhelpful)")
	}
	dists, ok := depend.DistanceVectors2(prog.Deps, outer, inner)
	if !ok {
		t.Fatal("wavefront must have exact distance vectors")
	}
	seen := map[[2]int64]bool{}
	for _, d := range dists {
		seen[d] = true
	}
	if !seen[[2]int64{1, 0}] || !seen[[2]int64{0, 1}] || len(dists) != 2 {
		t.Errorf("distances %v, want exactly (1,0) and (0,1)", dists)
	}
	tm, found := depend.FindSkewedInterchange(dists, 4)
	if !found {
		t.Fatal("unimodular repair must exist")
	}
	// f=0 suffices for (1,0),(0,1): plain interchange keeps both lex
	// positive; the demo's point is the combined search finds it.
	for _, d := range dists {
		td, okA := tm.Apply(d)
		if !okA || !(td[0] > 0 || (td[0] == 0 && td[1] >= 0)) {
			t.Errorf("repaired %v -> %v (%v) not lex nonnegative", d, td, okA)
		}
	}
}

// relaxationSrc mirrors examples/relaxation: flip-flop plane selectors
// are periodic with distinct rings, so the plane dependences are
// carried by the sweep loop only and the inner stencil parallelizes.
const relaxationSrc = `
cur = 1
old = 2
L1: for sweep = 1 to 12 {
    state[2 * cur] = state[2 * old] + sweep
    L2: for i = 1 to 48 {
        plane[cur * 64 + i] = plane[old * 64 + i] + 1
    }
    t = cur
    cur = old
    old = t
}
`

func TestRelaxationGolden(t *testing.T) {
	prog, err := Analyze(relaxationSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.ClassificationReport()
	for _, want := range []string{"periodic(L1, period 2, phase 0)", "periodic(L1, period 2, phase 1)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("classification missing %q:\n%s", want, rep)
		}
	}
	// Modulus reasoning on state[]: reads and writes one sweep apart.
	deps := prog.DependenceReport()
	if !strings.Contains(deps, "distance ≡ 1 mod 2") {
		t.Errorf("state[] dependence lost its mod-2 distance:\n%s", deps)
	}
	// Every plane dependence is carried by the sweep loop (directions
	// (<, =)), so the inner stencil loop parallelizes.
	if ok, blocking := depend.Parallelizable(prog.Deps, prog.IV.LoopByLabel("L2")); !ok {
		t.Errorf("inner stencil loop must parallelize; blocked by %v", blocking)
	}
	if ok, _ := depend.Parallelizable(prog.Deps, prog.IV.LoopByLabel("L1")); ok {
		t.Error("sweep loop carries the ping-pong dependences and must not parallelize")
	}
}

// packingSrc mirrors examples/packing: §4.4's strictly monotonic pack
// index — every b[k] write hits a fresh cell, so no output dependence.
const packingSrc = `
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    }
}
`

func TestPackingGolden(t *testing.T) {
	prog, err := Analyze(packingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if rep := prog.ClassificationReport(); !strings.Contains(rep, "monotonic") {
		t.Errorf("k must classify monotonic:\n%s", rep)
	}
	for _, d := range prog.Deps.Deps {
		if d.Src.Array == "b" && d.Kind == depend.Output {
			t.Errorf("unexpected output dependence on b: %s", d)
		}
	}
}
